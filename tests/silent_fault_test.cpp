// Silent comparator faults end to end: injection (FaultModel), silence
// (no degraded_phases tick), detection (Certifier), masking (TMR
// voting), bounded repair (certify_and_repair), and the escalation
// surfaces that consume the verdict (RecoveryController rung 4 and the
// SortService's SDC-detected retries).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "analysis/step_auditor.hpp"
#include "core/certifier.hpp"
#include "core/product_sort.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "network/recovery.hpp"
#include "product/subgraph_view.hpp"
#include "service/sort_service.hpp"

namespace prodsort {
namespace {

std::vector<Key> random_keys(PNode count, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<Key> keys(static_cast<std::size_t>(count));
  for (Key& k : keys) k = static_cast<Key>(rng() % 100000);
  return keys;
}

SortOptions oet_options(const SnakeOETS2& oet) {
  SortOptions options;
  options.s2 = &oet;
  return options;
}

/// Synchronous-phase count of the fault-free schedule, read off the
/// fault clock of an attached all-zero model (ticking never perturbs).
std::int64_t probe_phases(const ProductGraph& pg, const SortOptions& options) {
  FaultConfig tick;
  FaultModel clock(tick);
  Machine m(pg, random_keys(pg.num_nodes(), 1));
  m.set_fault_model(&clock);
  (void)sort_product_network(m, options);
  return m.fault_phase();
}

FaultConfig one_fault(PNode node, std::int64_t from, std::int64_t until,
                      ComparatorFaultKind kind) {
  FaultConfig config;
  config.seed = 5;
  config.comparator_schedule.push_back(
      {.node = node, .from_phase = from, .until_phase = until, .kind = kind});
  return config;
}

// A stuck comparator fires, perturbs nothing loud — no retries, no
// degraded phases — and never touches the key multiset.  Only the
// model's ground-truth tally and the certificate layer can tell.
TEST(SilentFault, StuckComparatorIsSilentButCounted) {
  const ProductGraph pg(labeled_path(4), 2);
  const auto keys = random_keys(pg.num_nodes(), 3);
  const SnakeOETS2 oet;

  FaultModel fm(one_fault(0, 0, -1, ComparatorFaultKind::kStuckPassThrough));
  Machine m(pg, keys);
  m.set_fault_model(&fm);
  (void)sort_product_network(m, oet_options(oet));

  EXPECT_GT(fm.counters().comparator_faults, 0);
  EXPECT_EQ(m.cost().degraded_phases, 0);  // silence is the point
  EXPECT_EQ(m.cost().retries, 0);

  // Pass-through can only misplace keys, never lose or invent them.
  const Certifier certifier(keys);
  const EndToEndCertificate cert = certifier.certify(m, full_view(pg));
  EXPECT_NE(cert.verdict, CertVerdict::kKeysCorrupted);
}

// A transient inverted comparator corrupts the order of at least one
// run; the certificate catches it and certify_and_repair restores the
// exact std::sort output once the fault window has closed — without a
// fault-free re-sort.
TEST(SilentFault, InvertedFaultIsDetectedAndRepairedInPlace) {
  const ProductGraph pg(labeled_path(4), 2);
  const PNode n = pg.num_nodes();
  const SnakeOETS2 oet;
  const SortOptions options = oet_options(oet);
  const std::int64_t phases = probe_phases(pg, options);
  ASSERT_GT(phases, 0);

  const auto keys = random_keys(n, 17);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());
  const Certifier certifier(keys);
  RepairOptions budget;
  budget.max_passes = static_cast<int>(n) + 4;

  int detected = 0;
  for (PNode node = 0; node < n; ++node) {
    FaultModel fm(
        one_fault(node, 0, phases, ComparatorFaultKind::kInverted));
    Machine m(pg, keys);
    m.set_fault_model(&fm);
    (void)sort_product_network(m, options);

    const EndToEndCertificate cert = certifier.certify(m, full_view(pg));
    // Inversion swaps outputs; it never loses or invents keys.
    ASSERT_NE(cert.verdict, CertVerdict::kKeysCorrupted) << "node " << node;
    if (cert.pass()) continue;  // this placement happened to be benign
    ++detected;

    // The fault clock is past the window now: repair runs clean.
    const RepairReport repair =
        certify_and_repair(m, full_view(pg), certifier, budget);
    EXPECT_EQ(repair.outcome, RepairOutcome::kRepaired) << "node " << node;
    EXPECT_LE(repair.passes, budget.max_passes);
    EXPECT_EQ(m.read_snake(full_view(pg)), expected) << "node " << node;
  }
  EXPECT_GT(detected, 0);  // at least one placement must corrupt the sort
}

// Arbitrary-output faults break the multiset itself: the verdict must
// be kKeysCorrupted and the repair loop must refuse to spend passes on
// data that no permutation can fix.
TEST(SilentFault, ArbitraryFaultYieldsKeysCorruptedAndNoRepair) {
  const ProductGraph pg(labeled_path(4), 2);
  const auto keys = random_keys(pg.num_nodes(), 23);
  const SnakeOETS2 oet;

  FaultModel fm(one_fault(0, 0, -1, ComparatorFaultKind::kArbitrary));
  Machine m(pg, keys);
  m.set_fault_model(&fm);
  (void)sort_product_network(m, oet_options(oet));
  EXPECT_GT(fm.counters().comparator_faults, 0);

  const Certifier certifier(keys);
  EXPECT_EQ(certifier.certify(m, full_view(pg)).verdict,
            CertVerdict::kKeysCorrupted);
  const RepairReport repair = certify_and_repair(m, full_view(pg), certifier);
  EXPECT_EQ(repair.outcome, RepairOutcome::kKeysCorrupted);
  EXPECT_EQ(repair.passes, 0);
}

// Fault-free TMR must be bit-identical to the plain machine while
// honestly charging the redundancy: 3x comparisons plus one vote step
// per phase, and nothing masked.
TEST(SilentFault, TmrFaultFreeIsBitIdenticalAndHonestlyCharged) {
  const ProductGraph pg(labeled_path(4), 2);
  const auto keys = random_keys(pg.num_nodes(), 29);
  const SnakeOETS2 oet;
  const SortOptions options = oet_options(oet);

  Machine plain(pg, keys);
  (void)sort_product_network(plain, options);

  Machine voted(pg, keys);
  voted.set_tmr(true);
  (void)sort_product_network(voted, options);

  EXPECT_TRUE(std::equal(plain.keys().begin(), plain.keys().end(),
                         voted.keys().begin()));
  EXPECT_GT(voted.cost().tmr_phases, 0);
  EXPECT_EQ(voted.cost().tmr_masked, 0);
  EXPECT_EQ(voted.cost().comparisons, 3 * plain.cost().comparisons);
  // One extra synchronous step per phase pays for the vote.
  EXPECT_EQ(voted.cost().exec_steps - plain.cost().exec_steps,
            voted.cost().tmr_phases);
}

// Spatial redundancy earns its 3x: a single permanently-faulty
// comparator occupies one replica, the other two outvote it every
// phase, and the output is the fault-free sort.
TEST(SilentFault, TmrMasksASinglePermanentlyFaultyComparator) {
  const ProductGraph pg(labeled_path(4), 2);
  const auto keys = random_keys(pg.num_nodes(), 31);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());
  const SnakeOETS2 oet;

  FaultModel fm(one_fault(0, 0, -1, ComparatorFaultKind::kInverted));
  Machine m(pg, keys);
  m.set_fault_model(&fm);
  m.set_tmr(true);
  (void)sort_product_network(m, oet_options(oet));

  EXPECT_GT(fm.counters().comparator_faults, 0);
  EXPECT_GT(m.cost().tmr_masked, 0);
  EXPECT_EQ(m.read_snake(full_view(pg)), expected);

  const Certifier certifier(keys);
  EXPECT_TRUE(certifier.certify(m, full_view(pg)).pass());
}

// The pass budget the docs cite (nodes + 4) is test-backed: for every
// k in 1..4 transient faults and several seeds, whenever the
// certificate fails, in-place repair converges within the budget and
// reproduces std::sort exactly.
TEST(SilentFault, RepairConvergesWithinBudgetForUpToFourFaults) {
  const ProductGraph pg(labeled_path(4), 2);
  const PNode n = pg.num_nodes();
  const SnakeOETS2 oet;
  const SortOptions options = oet_options(oet);
  const std::int64_t phases = probe_phases(pg, options);

  RepairOptions budget;
  budget.max_passes = static_cast<int>(n) + 4;

  int detected = 0;
  for (int k = 1; k <= 4; ++k) {
    for (unsigned seed = 1; seed <= 3; ++seed) {
      std::mt19937_64 rng(seed * 100 + static_cast<unsigned>(k));
      FaultConfig config;
      config.seed = rng();
      for (int i = 0; i < k; ++i) {
        ComparatorFault fault;
        fault.node = static_cast<PNode>(rng() % static_cast<std::uint64_t>(n));
        fault.from_phase =
            static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(phases));
        fault.until_phase = fault.from_phase + 1 +
                            static_cast<std::int64_t>(
                                rng() % static_cast<std::uint64_t>(
                                            phases - fault.from_phase));
        fault.kind = (rng() & 1) != 0 ? ComparatorFaultKind::kInverted
                                      : ComparatorFaultKind::kStuckPassThrough;
        config.comparator_schedule.push_back(fault);
      }

      const auto keys = random_keys(n, seed * 1000 + static_cast<unsigned>(k));
      std::vector<Key> expected = keys;
      std::sort(expected.begin(), expected.end());
      const Certifier certifier(keys);

      FaultModel fm(config);
      Machine m(pg, keys);
      m.set_fault_model(&fm);
      (void)sort_product_network(m, options);
      if (certifier.certify(m, full_view(pg)).pass()) continue;
      ++detected;

      const RepairReport repair =
          certify_and_repair(m, full_view(pg), certifier, budget);
      ASSERT_EQ(repair.outcome, RepairOutcome::kRepaired)
          << "k=" << k << " seed=" << seed;
      EXPECT_LE(repair.passes, budget.max_passes);
      EXPECT_EQ(m.read_snake(full_view(pg)), expected);
    }
  }
  EXPECT_GT(detected, 0);
}

// Rung 4 of the recovery ladder: a transient inverted comparator (no
// crash at all) must surface as cert_failed + kCertifiedRepair, and
// the controller still hands back a certified sorted snake.
TEST(SilentFault, RecoveryControllerTakesCertifiedRepairPath) {
  const ProductGraph pg(labeled_path(4), 2);
  const PNode n = pg.num_nodes();
  const SnakeOETS2 oet;
  const SortOptions options = oet_options(oet);
  const std::int64_t phases = probe_phases(pg, options);

  const auto keys = random_keys(n, 41);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());
  const Certifier certifier(keys);

  // Find a placement whose silent fault actually corrupts this input.
  PNode bad_node = -1;
  for (PNode node = 0; node < n && bad_node < 0; ++node) {
    FaultModel fm(one_fault(node, 0, phases, ComparatorFaultKind::kInverted));
    Machine m(pg, keys);
    m.set_fault_model(&fm);
    (void)sort_product_network(m, options);
    if (!certifier.certify(m, full_view(pg)).pass()) bad_node = node;
  }
  ASSERT_GE(bad_node, 0);

  FaultModel fm(
      one_fault(bad_node, 0, phases, ComparatorFaultKind::kInverted));
  Machine m(pg, keys);
  m.set_fault_model(&fm);
  RecoveryController controller(m);
  const CrashRecoveryReport report = controller.run(options);

  EXPECT_TRUE(report.cert_failed);
  EXPECT_EQ(report.path, RecoveryPath::kCertifiedRepair);
  EXPECT_TRUE(report.certified);
  EXPECT_GT(report.repair_passes, 0);
  EXPECT_EQ(report.crashes, 0);
  EXPECT_FALSE(report.data_loss);
  EXPECT_EQ(report.output, expected);
}

// A backend with a silently-inverted comparator must show up in the
// service report's SDC tallies — cert failure counts as backend
// failure — while conservation and verification invariants hold.
TEST(SilentFault, ServiceCountsSdcDetections) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  ServiceConfig config;
  config.seed = 7;
  config.jobs = 15;
  config.load = 0.5;
  config.queue = {ShedPolicy::kEdf, 8};
  config.breaker = {.failure_threshold = 2, .cooldown = 4096};

  std::vector<BackendConfig> backends(2);
  backends[0].fault_schedule = "seed=5,comparators=4@0I";  // permanent

  SortService service(pg, config, backends, &oet);
  const ServiceReport report = service.run();
  EXPECT_TRUE(report.conserved());
  EXPECT_GT(report.sdc_detected, 0);
  // Every job the service reports complete was verified — no silent
  // corruption escapes to a caller.
  EXPECT_EQ(report.verified_jobs,
            report.completed_on_time + report.completed_late);
}

// The auditor's TMR blind spot is counted, not ignored: under voting
// every phase is a blind phase, and without voting none are.
TEST(SilentFault, AuditorCountsTmrPhasesAsBlindSpot) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  const SortOptions options = oet_options(oet);
  StepAuditor auditor(pg);

  Machine voted(pg, random_keys(pg.num_nodes(), 47));
  voted.set_tmr(true);
  voted.set_observer(&auditor);
  (void)sort_product_network(voted, options);
  EXPECT_TRUE(auditor.clean());
  EXPECT_GT(auditor.stats().phases, 0);
  EXPECT_EQ(auditor.stats().tmr_phases, auditor.stats().phases);

  auditor.reset();
  Machine plain(pg, random_keys(pg.num_nodes(), 47));
  plain.set_observer(&auditor);
  (void)sort_product_network(plain, options);
  EXPECT_GT(auditor.stats().phases, 0);
  EXPECT_EQ(auditor.stats().tmr_phases, 0);
}

}  // namespace
}  // namespace prodsort
