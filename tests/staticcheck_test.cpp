#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <span>

#include "analysis/step_auditor.hpp"
#include "core/block_sort.hpp"
#include "core/product_sort.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "graph/labeled_factor.hpp"
#include "product/snake_order.hpp"
#include "product/subgraph_view.hpp"
#include "sortnet/zero_one.hpp"
#include "staticcheck/dataflow.hpp"
#include "staticcheck/schedule_ir.hpp"
#include "staticcheck/static_prover.hpp"
#include "staticcheck/zero_one_check.hpp"

namespace prodsort {
namespace {

std::vector<Key> random_keys(PNode count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Key> keys(static_cast<std::size_t>(count));
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000);
  return keys;
}

// ------------------------------------------------------------- recorder

TEST(ScheduleRecorderTest, RecordsTheFullSchedule) {
  const ProductGraph pg(labeled_path(3), 2);
  const ShearsortS2 s2;
  const ScheduleIR ir = record_product_schedule(pg, s2);

  EXPECT_EQ(ir.num_nodes, pg.num_nodes());
  EXPECT_EQ(ir.dims, 2);
  EXPECT_EQ(ir.block_size, 1);
  EXPECT_EQ(ir.topology, "path-3^2");
  EXPECT_EQ(ir.sorter, "shearsort");
  EXPECT_GT(ir.phases().size(), 0u);
  EXPECT_GT(ir.total_pairs(), 0);
  EXPECT_FALSE(ir.any_faulty());
  EXPECT_FALSE(ir.any_tmr());
}

TEST(ScheduleRecorderTest, ScheduleIsDataOblivious) {
  // The recorder's premise: the schedule is a constant of
  // (topology, sorter), independent of the keys.  Record from iota and
  // from a shuffled permutation; the canonical hashes must agree.
  const ProductGraph pg(labeled_cycle(4), 2);
  const SnakeOETS2 s2;
  const std::uint64_t expected =
      record_product_schedule(pg, s2).canonical_hash();

  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  std::iota(keys.begin(), keys.end(), Key{0});
  std::mt19937_64 rng(99);
  std::shuffle(keys.begin(), keys.end(), rng);
  Machine machine(pg, std::move(keys));
  ScheduleRecorder recorder(pg);
  machine.set_observer(&recorder);
  SortOptions options;
  options.s2 = &s2;
  (void)sort_product_network(machine, options);
  EXPECT_EQ(recorder.take().canonical_hash(), expected);
}

TEST(ScheduleRecorderTest, ChainsToNextObserver) {
  // Recorder in front of a StepAuditor: the auditor still sees every
  // phase (stats match the IR), and its validation authority forwards.
  const ProductGraph pg(labeled_path(3), 2);
  const ShearsortS2 s2;
  StepAuditor auditor(pg);
  ScheduleRecorder recorder(pg, &auditor);
  EXPECT_TRUE(recorder.supersedes_validation());

  std::vector<Key> keys = random_keys(pg.num_nodes(), 3);
  Machine machine(pg, std::move(keys));
  machine.set_observer(&recorder);
  SortOptions options;
  options.s2 = &s2;
  (void)sort_product_network(machine, options);

  const ScheduleIR ir = recorder.take();
  EXPECT_EQ(auditor.stats().phases,
            static_cast<std::int64_t>(ir.phases().size()));
  EXPECT_EQ(auditor.stats().pairs, ir.total_pairs());
  EXPECT_TRUE(auditor.clean());
}

TEST(ScheduleRecorderTest, PassiveRecorderDoesNotSupersedeValidation) {
  ScheduleRecorder recorder(ProductGraph(labeled_path(3), 2));
  EXPECT_FALSE(recorder.supersedes_validation());
}

TEST(ScheduleRecorderTest, CanonicalHashIgnoresLabels) {
  const ProductGraph pg(labeled_path(3), 2);
  const ShearsortS2 s2;
  ScheduleIR a = record_product_schedule(pg, s2);
  ScheduleIR b = a;
  b.topology = "renamed";
  b.sorter = "other";
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  // ...but not the pairs.
  b.mutable_phases().front().pairs.front().low ^= 1;
  EXPECT_NE(a.canonical_hash(), b.canonical_hash());
}

TEST(ScheduleRecorderTest, GraphFingerprintSeparatesFactors) {
  // Same size, same dims, different factor: schedules could collide by
  // hash, the fingerprint tells the proofs apart.
  EXPECT_NE(graph_fingerprint(ProductGraph(labeled_path(4), 2)),
            graph_fingerprint(ProductGraph(labeled_cycle(4), 2)));
  EXPECT_NE(graph_fingerprint(ProductGraph(labeled_path(4), 2)),
            graph_fingerprint(ProductGraph(labeled_path(4), 3)));
}

TEST(ScheduleRecorderTest, AppliedScheduleReproducesTheSort) {
  // Replaying the recorded schedule on fresh keys is the sort.
  const ProductGraph pg(labeled_path(4), 2);
  const ShearsortS2 s2;
  const ScheduleIR ir = record_product_schedule(pg, s2);

  Machine machine(pg, random_keys(pg.num_nodes(), 17));
  apply_schedule(machine, ir);
  EXPECT_TRUE(machine.snake_sorted(full_view(pg)));

  // Machine keeps a reference to its graph — the graph must outlive it.
  const ProductGraph small(labeled_path(3), 2);
  Machine wrong(small, random_keys(9, 1));
  EXPECT_THROW(apply_schedule(wrong, ir), std::invalid_argument);
}

// --------------------------------------------------------------- prover

TEST(StaticProverTest, ProvesStandardSorters) {
  const ShearsortS2 shearsort;
  const SnakeOETS2 snake_oet;
  const OracleS2 oracle;
  const S2Sorter* sorters[] = {&shearsort, &snake_oet, &oracle};
  for (const LabeledFactor& factor :
       {labeled_path(3), labeled_cycle(4), labeled_k2()}) {
    for (const S2Sorter* s2 : sorters) {
      const ProductGraph pg(factor, factor.size() == 2 ? 3 : 2);
      const ScheduleIR ir = record_product_schedule(pg, *s2);
      const StaticProof proof = prove_schedule(pg, ir);
      EXPECT_TRUE(proof.all_proven())
          << factor.name << " " << s2->name();
      EXPECT_LE(proof.max_resident_values, 2);
      EXPECT_EQ(proof.pairs, ir.total_pairs());
    }
  }
}

TEST(StaticProverTest, OverlappingPairCounterexample) {
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase phase;
  phase.pairs = {{0, 1}, {1, 2}};  // node 1 in two pairs
  ir.mutable_phases().push_back(phase);

  const StaticProof proof = prove_schedule(pg, ir);
  EXPECT_FALSE(proof.disjointness.proven);
  EXPECT_FALSE(proof.memory.proven);  // 3 resident values at node 1
  ASSERT_EQ(proof.disjointness.counterexamples.size(), 1u);
  const Violation& v = proof.disjointness.counterexamples.front();
  EXPECT_EQ(v.kind, ViolationKind::kOverlappingPair);
  EXPECT_EQ(v.phase, 0);
  EXPECT_EQ(v.pair_index, 1);
  EXPECT_EQ(v.node, 1);
  EXPECT_EQ(proof.max_resident_values, 3);
  EXPECT_TRUE(proof.locality.proven);  // both pairs are fine locally
}

TEST(StaticProverTest, DegeneratePairCounterexample) {
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase phase;
  phase.pairs = {{4, 4}};
  ir.mutable_phases().push_back(phase);

  const StaticProof proof = prove_schedule(pg, ir);
  EXPECT_FALSE(proof.disjointness.proven);
  ASSERT_GE(proof.disjointness.counterexamples.size(), 1u);
  EXPECT_EQ(proof.disjointness.counterexamples.front().kind,
            ViolationKind::kDegeneratePair);
}

TEST(StaticProverTest, CrossDimensionCounterexample) {
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase phase;
  // Nodes 0 = (0,0) and 4 = (1,1) differ in both dimensions.
  phase.pairs = {{0, 4}};
  phase.hop_distance = 2;
  ir.mutable_phases().push_back(phase);

  StaticProof proof = prove_schedule(pg, ir);
  EXPECT_FALSE(proof.locality.proven);
  ASSERT_EQ(proof.locality.counterexamples.size(), 1u);
  EXPECT_EQ(proof.locality.counterexamples.front().kind,
            ViolationKind::kWrongDimension);
  EXPECT_TRUE(proof.disjointness.proven);

  // The NetworkS2 exemption: cross-dimension pairs are legal when the
  // charged hop covers the full product distance.
  StaticProverOptions options;
  options.allow_cross_dimension = true;
  proof = prove_schedule(pg, ir, options);
  EXPECT_TRUE(proof.locality.proven);

  // ...but an undercharged cross-dimension hop is still caught.
  ir.mutable_phases().front().hop_distance = 1;
  proof = prove_schedule(pg, ir, options);
  EXPECT_FALSE(proof.locality.proven);
  EXPECT_EQ(proof.locality.counterexamples.front().kind,
            ViolationKind::kUnderchargedHop);
}

TEST(StaticProverTest, UnderchargedHopCounterexample) {
  const ProductGraph pg(labeled_path(4), 2);
  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase phase;
  // Nodes 0 = (0,0) and 3 = (3,0): distance 3 along dimension 1.
  phase.pairs = {{0, 3}};
  phase.hop_distance = 2;
  ir.mutable_phases().push_back(phase);

  const StaticProof proof = prove_schedule(pg, ir);
  EXPECT_FALSE(proof.locality.proven);
  ASSERT_EQ(proof.locality.counterexamples.size(), 1u);
  const Violation& v = proof.locality.counterexamples.front();
  EXPECT_EQ(v.kind, ViolationKind::kUnderchargedHop);
  EXPECT_EQ(v.expected, 3);
  EXPECT_EQ(v.observed, 2);
}

TEST(StaticProverTest, CounterexampleCapKeepsCounting) {
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase phase;
  for (int i = 0; i < 8; ++i) phase.pairs.push_back({0, 1});
  ir.mutable_phases().push_back(phase);

  StaticProverOptions options;
  options.max_counterexamples = 2;
  const StaticProof proof = prove_schedule(pg, ir, options);
  EXPECT_EQ(proof.disjointness.counterexamples.size(), 2u);
  EXPECT_GT(proof.disjointness.violation_count, 2);
}

TEST(StaticProverTest, DegenerateSchedules) {
  // Empty schedule and empty phases are vacuously proven.
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR empty;
  empty.num_nodes = pg.num_nodes();
  EXPECT_TRUE(prove_schedule(pg, empty).all_proven());

  ScheduleIR empty_phase;
  empty_phase.num_nodes = pg.num_nodes();
  empty_phase.mutable_phases().push_back(SchedulePhase{});
  const StaticProof proof = prove_schedule(pg, empty_phase);
  EXPECT_TRUE(proof.all_proven());
  EXPECT_EQ(proof.phases, 1);
  EXPECT_EQ(proof.pairs, 0);

  // Single-dimension product (r = 1): one legal pair along the path.
  const ProductGraph line(labeled_path(2), 1);
  ScheduleIR single;
  single.num_nodes = line.num_nodes();
  SchedulePhase phase;
  phase.pairs = {{0, 1}};
  single.mutable_phases().push_back(phase);
  EXPECT_TRUE(prove_schedule(line, single).all_proven());

  // Out-of-range endpoints are a hard error, not a counterexample.
  ScheduleIR bad;
  bad.num_nodes = pg.num_nodes();
  SchedulePhase bad_phase;
  bad_phase.pairs = {{0, 99}};
  bad.mutable_phases().push_back(bad_phase);
  EXPECT_THROW((void)prove_schedule(pg, bad), std::logic_error);
  EXPECT_THROW((void)prove_schedule(ProductGraph(labeled_path(4), 2), empty),
               std::invalid_argument);
}

TEST(StaticProverTest, AgreesWithStepAuditorOnBrokenSchedule) {
  // The same broken phase, judged statically and dynamically, yields
  // the same violation kinds — the two auditors share one taxonomy.
  const ProductGraph pg(labeled_path(3), 2);
  const std::vector<CEPair> pairs = {{0, 1}, {1, 2}, {3, 3}};

  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase phase;
  phase.pairs = pairs;
  ir.mutable_phases().push_back(phase);
  const StaticProof proof = prove_schedule(pg, ir);

  AuditorConfig config;
  config.throw_on_violation = false;
  StepAuditor auditor(pg, config);
  std::vector<Key> keys = random_keys(pg.num_nodes(), 5);
  auditor.before_phase(keys, pairs, 1, 1, false);
  auditor.after_phase(keys);

  std::vector<ViolationKind> static_kinds, dynamic_kinds;
  for (const Violation& v : proof.disjointness.counterexamples)
    static_kinds.push_back(v.kind);
  for (const Violation& v : auditor.violations())
    dynamic_kinds.push_back(v.kind);
  EXPECT_EQ(static_kinds, dynamic_kinds);
}

// ------------------------------------------------------------- zero-one

TEST(ZeroOneCheckTest, LowersOverSnakeRanks) {
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase phase;
  phase.pairs = {{0, 1}};
  ir.mutable_phases().push_back(phase);

  const LoweredSchedule lowered = lower_to_comparators(pg, ir);
  EXPECT_EQ(lowered.width, 9);
  ASSERT_EQ(lowered.comparators.size(), 1u);
  EXPECT_EQ(lowered.comparators[0].low,
            static_cast<int>(snake_rank(pg, 0)));
  EXPECT_EQ(lowered.comparators[0].high,
            static_cast<int>(snake_rank(pg, 1)));
  EXPECT_EQ(lowered.phase_of[0], 0);

  const LoweredSchedule identity = lower_to_comparators(pg, ir, false);
  EXPECT_EQ(identity.comparators[0].low, 0);
  EXPECT_EQ(identity.comparators[0].high, 1);
}

TEST(ZeroOneCheckTest, ProvesRecordedSchedulesExhaustively) {
  const ShearsortS2 shearsort;
  const SnakeOETS2 snake_oet;
  for (const S2Sorter* s2 :
       {static_cast<const S2Sorter*>(&shearsort),
        static_cast<const S2Sorter*>(&snake_oet)}) {
    const ProductGraph pg(labeled_path(3), 2);
    const ScheduleIR ir = record_product_schedule(pg, *s2);
    const ZeroOneCheckResult result =
        check_zero_one(lower_to_comparators(pg, ir));
    EXPECT_TRUE(result.proven()) << s2->name();
    EXPECT_EQ(result.cert.inputs_tested, 512);  // all 2^9
  }
}

TEST(ZeroOneCheckTest, BrokenScheduleYieldsMinimizedWitness) {
  // Truncate a snake OET schedule to its opening phase: some 0-1 input
  // must survive unsorted, and the greedy minimization strips 1s while
  // the input keeps failing.
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir = record_product_schedule(pg, SnakeOETS2{});
  ASSERT_GT(ir.phases().size(), 1u);
  ir.mutable_phases().resize(1);

  const LoweredSchedule lowered = lower_to_comparators(pg, ir);
  const auto ones = [](const std::vector<Key>& v) {
    return std::count(v.begin(), v.end(), Key{1});
  };
  ZeroOneCheckOptions raw;
  raw.minimize_witness = false;
  const ZeroOneCheckResult unminimized = check_zero_one(lowered, raw);
  const ZeroOneCheckResult minimized = check_zero_one(lowered);
  ASSERT_FALSE(unminimized.sorts());
  ASSERT_FALSE(minimized.sorts());
  ASSERT_EQ(minimized.cert.witness.size(), 9u);
  EXPECT_FALSE(schedule_sorts_input(lowered, minimized.cert.witness));
  EXPECT_EQ(ones(minimized.cert.witness),
            ones(unminimized.cert.witness) - minimized.witness_ones_removed);
  // Characterization of the greedy pass on this schedule: the surviving
  // witness is locally minimal — losing any remaining 1 makes it sort.
  std::vector<Key> probe = minimized.cert.witness;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    if (probe[i] == 0) continue;
    probe[i] = 0;
    EXPECT_TRUE(schedule_sorts_input(lowered, probe)) << i;
    probe[i] = 1;
  }
}

TEST(ZeroOneCheckTest, SampledModeIsDeterministic) {
  const ProductGraph pg(labeled_path(3), 3);  // 27 wires: beyond cutoff
  const ScheduleIR ir = record_product_schedule(pg, ShearsortS2{});
  const LoweredSchedule lowered = lower_to_comparators(pg, ir);

  ZeroOneCheckOptions options;
  options.max_exhaustive_width = 22;
  options.sample_budget = 256;
  options.seed = 42;
  const ZeroOneCheckResult a = check_zero_one(lowered, options);
  const ZeroOneCheckResult b = check_zero_one(lowered, options);
  EXPECT_FALSE(a.cert.exhaustive);
  EXPECT_TRUE(a.sorts());
  EXPECT_FALSE(a.proven());  // sampled: evidence, not proof
  EXPECT_EQ(a.cert.inputs_tested, b.cert.inputs_tested);

  options.seed = 43;  // a different stream is a different computation
  const ZeroOneCheckResult c = check_zero_one(lowered, options);
  EXPECT_TRUE(c.sorts());
}

TEST(ZeroOneCheckTest, WidthOneSortsTrivially) {
  LoweredSchedule one;
  one.width = 1;
  const ZeroOneCheckResult result = check_zero_one(one);
  EXPECT_TRUE(result.proven());
  EXPECT_EQ(result.cert.inputs_tested, 2);
}

TEST(ZeroOneEngineTest, BitParallelMatchesBlackBoxBitForBit) {
  // Satellite contract of the dedupe: the bit-parallel engine and the
  // black-box certifier consume the same input stream and must agree on
  // inputs_tested and the witness, exhaustively and sampled.
  std::vector<Comparator> broken = {{0, 1}, {2, 3}};  // width 4, no merge
  const auto algorithm = [&](std::span<Key> v) {
    for (const Comparator& c : broken) {
      if (v[static_cast<std::size_t>(c.low)] >
          v[static_cast<std::size_t>(c.high)])
        std::swap(v[static_cast<std::size_t>(c.low)],
                  v[static_cast<std::size_t>(c.high)]);
    }
  };
  for (const std::int64_t budget : {std::int64_t{16}, std::int64_t{7}}) {
    const ZeroOneCertificate scalar =
        certify_zero_one(4, algorithm, budget, 9);
    const ZeroOneCertificate parallel =
        certify_comparators_zero_one(4, broken, budget, 9).cert;
    EXPECT_EQ(scalar.exhaustive, parallel.exhaustive) << budget;
    EXPECT_EQ(scalar.inputs_tested, parallel.inputs_tested) << budget;
    EXPECT_EQ(scalar.failures, parallel.failures) << budget;
    EXPECT_EQ(scalar.witness, parallel.witness) << budget;
  }
}

// ------------------------------------------------------------- dataflow

TEST(DataflowTest, RelationDomainKillsRepeatedComparators) {
  const ProductGraph pg(labeled_path(2), 1);
  ScheduleIR ir;
  ir.num_nodes = 2;
  SchedulePhase phase;
  phase.pairs = {{0, 1}};
  ir.mutable_phases().push_back(phase);
  ir.mutable_phases().push_back(phase);  // identical pair again: dead

  const LoweredSchedule lowered = lower_to_comparators(pg, ir);
  const DataflowReport report = analyze_dataflow(lowered, ir);
  EXPECT_TRUE(report.relation_ran);
  ASSERT_EQ(report.dead.size(), 2u);
  EXPECT_EQ(report.dead[0], 0);
  EXPECT_EQ(report.dead[1], 1);
  EXPECT_GE(report.dead_by_relation, 1);
  EXPECT_EQ(report.saved_steps_prune, 1);  // second phase empties out
}

TEST(DataflowTest, AppendedRedundantPassIsDeadAndPrunable) {
  // Append a full re-run of the final phase to a proven sorter: every
  // appended pair is dead (the sorted prefix never exchanges again),
  // pruning drops the phase, and the replay matches end to end with
  // strictly fewer charged steps.
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir = record_product_schedule(pg, ShearsortS2{});
  const std::size_t original_phases = ir.phases().size();
  ir.mutable_phases().push_back(ir.phases().back());

  const LoweredSchedule lowered = lower_to_comparators(pg, ir);
  const DataflowReport report = analyze_dataflow(lowered, ir);
  ASSERT_TRUE(report.dead_exact);
  const std::size_t appended = ir.phases().back().pairs.size();
  std::int64_t appended_dead = 0;
  for (std::size_t k = report.dead.size() - appended; k < report.dead.size();
       ++k)
    appended_dead += report.dead[k];
  EXPECT_EQ(appended_dead, static_cast<std::int64_t>(appended));

  const ScheduleIR pruned = prune_schedule(ir, report.dead);
  EXPECT_LE(pruned.phases().size(), original_phases);

  const std::vector<Key> keys = random_keys(pg.num_nodes(), 23);
  Machine full(pg, keys), slim(pg, keys);
  apply_schedule(full, ir);
  apply_schedule(slim, pruned);
  EXPECT_TRUE(std::equal(full.keys().begin(), full.keys().end(),
                         slim.keys().begin()));
  EXPECT_LT(slim.cost().exec_steps, full.cost().exec_steps);
  EXPECT_LT(slim.cost().comparisons, full.cost().comparisons);
}

TEST(DataflowTest, ShearsortCarriesProvablyDeadComparators) {
  // The acceptance case: shearsort's fixed iteration count over-runs
  // once the grid is sorted, so the exact 0-1 activity analysis finds
  // genuinely dead comparators in the unmodified recorded schedule —
  // and the pruned schedule still sorts every input (0-1 proof), with
  // fewer charged comparisons end-to-end.
  const ProductGraph pg(labeled_path(4), 2);
  const ScheduleIR ir = record_product_schedule(pg, ShearsortS2{});
  const LoweredSchedule lowered = lower_to_comparators(pg, ir);
  const DataflowReport report = analyze_dataflow(lowered, ir);
  ASSERT_TRUE(report.dead_exact);
  EXPECT_GT(report.dead_total(), 0);

  const ScheduleIR pruned = prune_schedule(ir, report.dead);
  EXPECT_TRUE(
      check_zero_one(lower_to_comparators(pg, pruned)).proven());

  const std::vector<Key> keys = random_keys(pg.num_nodes(), 31);
  Machine full(pg, keys), slim(pg, keys);
  apply_schedule(full, ir);
  apply_schedule(slim, pruned);
  EXPECT_TRUE(slim.snake_sorted(full_view(pg)));
  EXPECT_TRUE(std::equal(full.keys().begin(), full.keys().end(),
                         slim.keys().begin()));
  EXPECT_LT(slim.cost().comparisons, full.cost().comparisons);
  if (report.saved_steps_prune > 0) {
    EXPECT_LT(slim.cost().exec_steps, full.cost().exec_steps);
  }
}

TEST(DataflowTest, FusionFindsDisjointAdjacentPhases) {
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase a, b, c;
  a.pairs = {{0, 1}};
  b.pairs = {{2, 5}};  // disjoint from a: fusable boundary
  c.pairs = {{0, 1}};  // overlaps b?  no — but a+b already consumed
  a.hop_distance = b.hop_distance = c.hop_distance = 1;
  ir.mutable_phases().push_back(a);
  ir.mutable_phases().push_back(b);
  ir.mutable_phases().push_back(c);

  const DataflowReport report =
      analyze_dataflow(lower_to_comparators(pg, ir), ir);
  ASSERT_EQ(report.fusions.size(), 1u);
  EXPECT_EQ(report.fusions[0].first_phase, 0);
  EXPECT_EQ(report.fusions[0].saved_hops, 1);
  EXPECT_EQ(report.saved_steps_fusion, 1);
}

TEST(DataflowTest, CriticalPathAndSlack) {
  // Two sequentially dependent comparators spread over three phases:
  // depth 2, slack 1.
  const ProductGraph pg(labeled_path(3), 2);
  ScheduleIR ir;
  ir.num_nodes = pg.num_nodes();
  SchedulePhase a, b, c;
  a.pairs = {{0, 1}};
  b.pairs = {{1, 2}};
  ir.mutable_phases().push_back(a);
  ir.mutable_phases().push_back(b);
  ir.mutable_phases().push_back(c);  // empty trailing phase

  const DataflowReport report =
      analyze_dataflow(lower_to_comparators(pg, ir), ir);
  EXPECT_EQ(report.phase_count, 3);
  EXPECT_EQ(report.critical_path, 2);
  EXPECT_EQ(report.slack, 1);
}

TEST(DataflowTest, PruneValidatesFlagCount) {
  const ProductGraph pg(labeled_path(3), 2);
  const ScheduleIR ir = record_product_schedule(pg, ShearsortS2{});
  EXPECT_THROW((void)prune_schedule(ir, std::vector<std::uint8_t>(3, 0)),
               std::invalid_argument);
}

// ---------------------------------------------- statically-audited mode

TEST(StaticallyAuditedTest, SkipsTheDisjointnessSweep) {
  const ProductGraph pg(labeled_path(3), 2);
  const std::vector<CEPair> overlapping = {{0, 1}, {1, 2}};

  Machine machine(pg, random_keys(pg.num_nodes(), 7));
  machine.set_check_disjoint(true);
  EXPECT_THROW(machine.compare_exchange_step(overlapping), std::logic_error);

  machine.set_statically_audited(true);
  EXPECT_TRUE(machine.statically_audited());
  EXPECT_NO_THROW(machine.compare_exchange_step(overlapping));

  machine.set_statically_audited(false);
  EXPECT_THROW(machine.compare_exchange_step(overlapping), std::logic_error);
}

TEST(StaticallyAuditedTest, ProvenScheduleRunsIdentically) {
  // The mode only skips validation; results are bit-identical.
  const ProductGraph pg(labeled_path(4), 2);
  const ScheduleIR ir = record_product_schedule(pg, ShearsortS2{});
  ASSERT_TRUE(prove_schedule(pg, ir).all_proven());

  const std::vector<Key> keys = random_keys(pg.num_nodes(), 11);
  Machine checked(pg, keys), audited(pg, keys);
  checked.set_check_disjoint(true);
  audited.set_check_disjoint(true);
  audited.set_statically_audited(true);
  apply_schedule(checked, ir);
  apply_schedule(audited, ir);
  EXPECT_TRUE(std::equal(checked.keys().begin(), checked.keys().end(),
                         audited.keys().begin()));
  EXPECT_EQ(checked.cost().exec_steps, audited.cost().exec_steps);
}

// ---------------------------------------------------------------- block

TEST(BlockScheduleTest, RecordsAndCertifiesBlockSchedules) {
  // Block schedules certify at unit granularity (Knuth 5.3.4): the
  // merge-split pair schedule, lowered to unit comparators, must sort
  // all 0-1 inputs — and the real block machine then sorts too.
  const ProductGraph pg(labeled_path(3), 2);
  const BlockShearsortS2 s2;
  const ScheduleIR ir = record_block_schedule(pg, s2, 4);
  EXPECT_EQ(ir.block_size, 4);
  EXPECT_EQ(ir.sorter, "block-shearsort");
  EXPECT_TRUE(prove_schedule(pg, ir).all_proven());
  EXPECT_TRUE(check_zero_one(lower_to_comparators(pg, ir)).proven());
}

}  // namespace
}  // namespace prodsort
