#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/product_sort.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "product/snake_order.hpp"

namespace prodsort {
namespace {

std::vector<Key> random_keys(PNode count, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<Key> keys(static_cast<std::size_t>(count));
  for (Key& k : keys) k = static_cast<Key>(rng() % 100000);
  return keys;
}

TEST(VerifyTest, ChecksumIsOrderIndependent) {
  std::vector<Key> keys = {5, 1, 4, 1, 9, 2, 6};
  const std::uint64_t original = multiset_checksum(keys);
  std::mt19937 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(keys.begin(), keys.end(), rng);
    EXPECT_EQ(multiset_checksum(keys), original);
  }
}

TEST(VerifyTest, ChecksumDetectsValueAndMultiplicityChanges) {
  const std::vector<Key> keys = {5, 1, 4, 1, 9};
  const std::uint64_t original = multiset_checksum(keys);
  std::vector<Key> flipped = keys;
  flipped[2] ^= 1;  // single bit flip
  EXPECT_NE(multiset_checksum(flipped), original);
  std::vector<Key> duplicated = {5, 1, 4, 4, 9};  // same sum of two 4s vs 1+...
  EXPECT_NE(multiset_checksum(duplicated), original);
  const std::vector<Key> shorter = {5, 1, 4, 1};
  EXPECT_NE(multiset_checksum(shorter), original);
}

TEST(VerifyTest, CertifiesSortedMachine) {
  const ProductGraph pg(labeled_path(4), 3);
  const auto keys = random_keys(pg.num_nodes(), 1);
  Machine m(pg, keys);
  (void)sort_product_network(m);
  const SortCertificate cert = certify_snake(m, full_view(pg));
  EXPECT_TRUE(cert.sorted);
  EXPECT_EQ(cert.first_violation, -1);
  EXPECT_EQ(cert.checksum, multiset_checksum(keys));  // multiset preserved
}

TEST(VerifyTest, CertificateLocatesDirtyWindow) {
  const ProductGraph pg(labeled_path(4), 2);
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  for (PNode rank = 0; rank < pg.num_nodes(); ++rank)
    keys[static_cast<std::size_t>(node_at_snake_rank(pg, rank))] =
        static_cast<Key>(rank);
  // Swap the keys at snake ranks 5 and 9: dirty window [5, 9].
  std::swap(keys[static_cast<std::size_t>(node_at_snake_rank(pg, 5))],
            keys[static_cast<std::size_t>(node_at_snake_rank(pg, 9))]);
  const Machine m(pg, keys);
  const SortCertificate cert = certify_snake(m, full_view(pg));
  EXPECT_FALSE(cert.sorted);
  EXPECT_EQ(cert.dirty_lo, 5);
  EXPECT_EQ(cert.dirty_hi, 9);
  EXPECT_EQ(cert.first_violation, 5);
}

TEST(VerifyTest, CleanMachineNeedsNoRecovery) {
  const ProductGraph pg(labeled_path(4), 2);
  const auto keys = random_keys(pg.num_nodes(), 2);
  Machine m(pg, keys);
  (void)sort_product_network(m);
  const RecoveryReport report = verify_and_recover(
      m, full_view(pg), {.expected_checksum = multiset_checksum(keys)});
  EXPECT_EQ(report.outcome, RecoveryOutcome::kClean);
  EXPECT_EQ(report.rounds, 0);
  EXPECT_EQ(report.recovery_steps, 0);
  EXPECT_EQ(m.cost().recovery_steps, 0);
}

TEST(VerifyTest, RecoversFromOrderCorruption) {
  const ProductGraph pg(labeled_path(4), 3);
  const auto input = random_keys(pg.num_nodes(), 7);
  Machine m(pg, input);
  (void)sort_product_network(m);

  // Perturb the sorted machine: swap keys at a handful of distant ranks,
  // simulating lost compare-exchange messages.
  auto keys = m.mutable_keys();
  for (const auto& [a, b] : {std::pair<PNode, PNode>{3, 17},
                             std::pair<PNode, PNode>{20, 41}}) {
    std::swap(keys[static_cast<std::size_t>(node_at_snake_rank(pg, a))],
              keys[static_cast<std::size_t>(node_at_snake_rank(pg, b))]);
  }
  ASSERT_FALSE(m.snake_sorted(full_view(pg)));

  const RecoveryReport report = verify_and_recover(
      m, full_view(pg), {.expected_checksum = multiset_checksum(input)});
  EXPECT_EQ(report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_GE(report.rounds, 1);
  EXPECT_GT(report.recovery_steps, 0);
  EXPECT_EQ(m.cost().recovery_steps, report.recovery_steps);
  EXPECT_TRUE(m.snake_sorted(full_view(pg)));
  EXPECT_TRUE(report.after.sorted);

  std::vector<Key> expected = input;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(m.read_snake(full_view(pg)), expected);
}

TEST(VerifyTest, DetectsDataLossFromKeyCorruption) {
  const ProductGraph pg(labeled_path(4), 2);
  const auto input = random_keys(pg.num_nodes(), 8);
  Machine m(pg, input);
  (void)sort_product_network(m);
  m.mutable_keys()[5] ^= Key{1} << 20;  // bit flip: multiset changed

  const RecoveryReport report = verify_and_recover(
      m, full_view(pg), {.expected_checksum = multiset_checksum(input)});
  EXPECT_EQ(report.outcome, RecoveryOutcome::kDataLoss);
  EXPECT_EQ(report.rounds, 0);  // no point re-sorting lost data
}

TEST(VerifyTest, EndToEndRecoveryUnderInjectedFaults) {
  // The acceptance scenario in miniature: executable sorter, lost
  // compare-exchange messages at 1e-2, one straggler — sort, verify,
  // recover, and demand a perfectly sorted result.
  const ProductGraph pg(labeled_path(4), 3);
  const SnakeOETS2 oet;
  SortOptions options;
  options.s2 = &oet;
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const auto input = random_keys(pg.num_nodes(), 100 + seed);
    FaultConfig config;
    config.seed = seed;
    config.ce_drop_rate = 1e-2;
    config.stragglers = 1;
    config.straggler_factor = 4;
    FaultModel fm(config);
    fm.select_stragglers(pg.num_nodes());
    Machine m(pg, input);
    m.set_fault_model(&fm);
    (void)sort_product_network(m, options);

    const RecoveryReport report = verify_and_recover(
        m, full_view(pg), {.expected_checksum = multiset_checksum(input)});
    EXPECT_TRUE(report.outcome == RecoveryOutcome::kClean ||
                report.outcome == RecoveryOutcome::kRecovered)
        << "seed " << seed << ": " << to_string(report.outcome);

    std::vector<Key> expected = input;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(m.read_snake(full_view(pg)), expected) << "seed " << seed;
  }
}

TEST(VerifyTest, OutcomeNamesAreStable) {
  EXPECT_EQ(to_string(RecoveryOutcome::kClean), "clean");
  EXPECT_EQ(to_string(RecoveryOutcome::kRecovered), "recovered");
  EXPECT_EQ(to_string(RecoveryOutcome::kDataLoss), "data-loss");
  EXPECT_EQ(to_string(RecoveryOutcome::kUnrecovered), "unrecovered");
}

}  // namespace
}  // namespace prodsort
