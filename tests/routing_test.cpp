#include "network/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

namespace prodsort {
namespace {

void expect_delivers(const LabeledFactor& f, std::span<const NodeId> dest) {
  const RoutingResult result = route_permutation(f, dest);
  for (NodeId p = 0; p < f.size(); ++p)
    EXPECT_EQ(result.delivered[static_cast<std::size_t>(
                  dest[static_cast<std::size_t>(p)])],
              p)
        << f.name;
  EXPECT_LE(result.steps, (f.size() + 1) * f.dilation) << f.name;
}

TEST(RoutingTest, IdentityPermutation) {
  const LabeledFactor f = labeled_path(6);
  std::vector<NodeId> dest(6);
  std::iota(dest.begin(), dest.end(), 0);
  const RoutingResult result = route_permutation(f, dest);
  for (NodeId v = 0; v < 6; ++v)
    EXPECT_EQ(result.delivered[static_cast<std::size_t>(v)], v);
}

TEST(RoutingTest, ReversalOnEveryStandardFactor) {
  for (const LabeledFactor& f : standard_factors()) {
    std::vector<NodeId> dest(static_cast<std::size_t>(f.size()));
    for (NodeId v = 0; v < f.size(); ++v)
      dest[static_cast<std::size_t>(v)] = f.size() - 1 - v;
    expect_delivers(f, dest);
  }
}

TEST(RoutingTest, RandomPermutationsOnEveryStandardFactor) {
  std::mt19937 rng(11);
  for (const LabeledFactor& f : standard_factors()) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<NodeId> dest(static_cast<std::size_t>(f.size()));
      std::iota(dest.begin(), dest.end(), 0);
      std::shuffle(dest.begin(), dest.end(), rng);
      expect_delivers(f, dest);
    }
  }
}

TEST(RoutingTest, RejectsNonPermutations) {
  const LabeledFactor f = labeled_path(4);
  const NodeId dup[] = {0, 0, 1, 2};
  EXPECT_THROW((void)route_permutation(f, dup), std::invalid_argument);
  const NodeId range[] = {0, 1, 2, 4};
  EXPECT_THROW((void)route_permutation(f, range), std::invalid_argument);
  const NodeId short_vec[] = {0, 1, 2};
  EXPECT_THROW((void)route_permutation(f, short_vec), std::invalid_argument);
}

TEST(RoutingTest, ValidationNamesTheOffendingIndex) {
  const LabeledFactor f = labeled_path(4);
  try {
    const NodeId dup[] = {3, 1, 3, 2};
    (void)route_permutation(f, dup);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dest[2] = 3"), std::string::npos) << what;
    EXPECT_NE(what.find("dest[0]"), std::string::npos) << what;  // first holder
  }
  try {
    const NodeId range[] = {0, 1, 2, -1};
    (void)route_permutation(f, range);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dest[3] = -1"), std::string::npos)
        << e.what();
  }
}

TEST(RoutingTest, InputStateIsUntouchedOnRejection) {
  // Bad input must throw before any packet moves: the routing result is
  // never partially built from a corrupt destination map.
  const LabeledFactor f = labeled_path(5);
  const NodeId bad[] = {0, 1, 2, 3, 5};
  for (int attempt = 0; attempt < 2; ++attempt)
    EXPECT_THROW((void)route_permutation(f, bad), std::invalid_argument);
  // The same factor still routes a valid permutation afterwards.
  const NodeId good[] = {4, 3, 2, 1, 0};
  const RoutingResult result = route_permutation(f, good);
  for (NodeId p = 0; p < 5; ++p)
    EXPECT_EQ(result.delivered[static_cast<std::size_t>(
                  good[static_cast<std::size_t>(p)])],
              p);
}

TEST(RoutingTest, AdjacentSwapIsCheap) {
  const LabeledFactor f = labeled_path(8);
  std::vector<NodeId> dest(8);
  std::iota(dest.begin(), dest.end(), 0);
  std::swap(dest[2], dest[3]);
  const RoutingResult result = route_permutation(f, dest);
  EXPECT_LE(result.steps, 3 * f.dilation);  // swap + quiet confirmation
}

}  // namespace
}  // namespace prodsort
