#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/factor_graphs.hpp"
#include "graph/hamiltonian.hpp"
#include "render/ascii.hpp"
#include "render/csv.hpp"
#include "render/dot.hpp"

namespace prodsort {
namespace {

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(DotTest, PlainGraphContainsEveryEdge) {
  const Graph g = make_petersen();
  const std::string dot = to_dot(g, "petersen");
  EXPECT_NE(dot.find("graph \"petersen\""), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, " -- "), 15);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
}

TEST(DotTest, HighlightedOrderAddsRedEdges) {
  const Graph g = make_cycle(6);
  const auto path = find_hamiltonian_path(g);
  ASSERT_TRUE(path.has_value());
  const std::string dot = to_dot(g, "c6", *path);
  EXPECT_EQ(count_occurrences(dot, "color=red"), 5);  // path of 6 nodes
}

TEST(DotTest, ProductGraphTupleLabels) {
  const ProductGraph pg(labeled_path(3), 2);
  const std::string dot = to_dot(pg, "grid3x3");
  EXPECT_NE(dot.find("label=\"00\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"22\""), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, " -- "), 12);  // 2 * 3 * 2 edges
}

TEST(DotTest, SnakeHighlightCoversAllRanks) {
  const ProductGraph pg(labeled_path(3), 2);
  DotStyle style;
  style.highlight_snake = true;
  const std::string dot = to_dot(pg, "snake", style);
  EXPECT_EQ(count_occurrences(dot, "color=red"), 8);  // 9 ranks, 8 steps
}

TEST(DotTest, RejectsHugeProducts) {
  const ProductGraph pg(labeled_path(10), 4);
  EXPECT_THROW((void)to_dot(pg, "huge"), std::invalid_argument);
}

TEST(CsvTest, BasicDocument) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.num_rows(), 2u);
  EXPECT_EQ(csv.str(), "a,b\n1,2\n3,4\n");
}

TEST(CsvTest, QuotingRules) {
  CsvWriter csv({"text"});
  csv.add_row({"plain"});
  csv.add_row({"with,comma"});
  csv.add_row({"with\"quote"});
  csv.add_row({"with\nnewline"});
  EXPECT_EQ(csv.str(),
            "text\nplain\n\"with,comma\"\n\"with\"\"quote\"\n"
            "\"with\nnewline\"\n");
}

TEST(CsvTest, ArityValidation) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(CsvTest, WritesToFile) {
  const std::string path = "/tmp/prodsort_csv_test.csv";
  CsvWriter csv({"x"});
  csv.add_row({"42"});
  csv.write(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x\n42\n");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteFailureThrows) {
  CsvWriter csv({"x"});
  EXPECT_THROW(csv.write("/nonexistent-dir/file.csv"), std::runtime_error);
}

TEST(AsciiTest, RendersUnitKeyView) {
  const ProductGraph pg(labeled_path(3), 2);
  std::vector<Key> keys(9);
  for (PNode v = 0; v < 9; ++v) keys[static_cast<std::size_t>(v)] = v;
  const Machine m(pg, std::move(keys));
  // Rows follow dimension 2, columns dimension 1: row r = keys 3r..3r+2.
  EXPECT_EQ(render_view(m, full_view(pg)),
            " 0 1 2\n 3 4 5\n 6 7 8\n");
}

TEST(AsciiTest, AlignsWideKeys) {
  const ProductGraph pg(labeled_path(3), 2);
  std::vector<Key> keys(9, 5);
  keys[4] = 1234;
  const Machine m(pg, std::move(keys));
  const std::string text = render_view(m, full_view(pg));
  EXPECT_NE(text.find("1234"), std::string::npos);
  EXPECT_NE(text.find("    5"), std::string::npos);  // padded to width 4
}

TEST(AsciiTest, RendersBlockView) {
  const ProductGraph pg(labeled_path(3), 2);
  std::vector<Key> keys(18);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<Key>(i);
  const BlockMachine m(pg, std::move(keys), 2);
  const std::string text = render_view(m, full_view(pg));
  EXPECT_NE(text.find("[0 1]"), std::string::npos);
  EXPECT_NE(text.find("[16 17]"), std::string::npos);
}

TEST(AsciiTest, RejectsNonTwoDimensionalViews) {
  const ProductGraph pg(labeled_path(3), 3);
  const Machine m(pg, std::vector<Key>(27, 0));
  EXPECT_THROW((void)render_view(m, full_view(pg)), std::invalid_argument);
}

}  // namespace
}  // namespace prodsort
