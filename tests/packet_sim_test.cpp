#include "network/packet_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "graph/factor_graphs.hpp"
#include "graph/graph_algos.hpp"
#include "graph/labeled_factor.hpp"

namespace prodsort {
namespace {

TEST(PacketSimTest, IdentityNeedsNoSteps) {
  const Graph g = make_cycle(6);
  std::vector<NodeId> dest(6);
  std::iota(dest.begin(), dest.end(), 0);
  const PacketStats stats = simulate_permutation(g, dest);
  EXPECT_EQ(stats.steps, 0);
  EXPECT_EQ(stats.total_hops, 0);
}

TEST(PacketSimTest, SingleSwapTakesOneStep) {
  const Graph g = make_path(5);
  std::vector<NodeId> dest = {0, 2, 1, 3, 4};
  const PacketStats stats = simulate_permutation(g, dest);
  EXPECT_EQ(stats.steps, 1);  // both packets cross disjoint directed links
  EXPECT_EQ(stats.total_hops, 2);
}

TEST(PacketSimTest, ReversalOnPathTakesAboutNSteps) {
  const Graph g = make_path(8);
  std::vector<NodeId> dest(8);
  for (NodeId v = 0; v < 8; ++v) dest[static_cast<std::size_t>(v)] = 7 - v;
  const PacketStats stats = simulate_permutation(g, dest);
  EXPECT_GE(stats.steps, 7);       // diameter
  EXPECT_LE(stats.steps, 8 * 3);   // well under the serial bound
}

TEST(PacketSimTest, RandomPermutationsDeliverOnEveryFactor) {
  std::mt19937 rng(91);
  for (const LabeledFactor& f : standard_factors()) {
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<NodeId> dest(static_cast<std::size_t>(f.size()));
      std::iota(dest.begin(), dest.end(), 0);
      std::shuffle(dest.begin(), dest.end(), rng);
      const PacketStats stats = simulate_permutation(f.graph, dest);
      // Delivery time is at least the farthest displaced packet.
      int max_dist = 0;
      for (NodeId p = 0; p < f.size(); ++p)
        max_dist = std::max(
            max_dist, distance(f.graph, p, dest[static_cast<std::size_t>(p)]));
      EXPECT_GE(stats.steps, max_dist) << f.name;
      EXPECT_LE(stats.steps, 6 * f.size()) << f.name;  // generous sanity
    }
  }
}

TEST(PacketSimTest, AnalyticRoutingCostIsSane) {
  // The cost model's R(N) must be in the ballpark of (or above) the
  // greedy simulation for Hamiltonian-labeled families, over many
  // permutations.
  std::mt19937 rng(93);
  for (const LabeledFactor& f :
       {labeled_cycle(8), labeled_complete(8), labeled_petersen()}) {
    int worst = 0;
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<NodeId> dest(static_cast<std::size_t>(f.size()));
      std::iota(dest.begin(), dest.end(), 0);
      std::shuffle(dest.begin(), dest.end(), rng);
      worst = std::max(worst, simulate_permutation(f.graph, dest).steps);
    }
    EXPECT_LE(worst, 3 * f.routing_cost + 3) << f.name;
  }
}

TEST(PacketSimTest, ProductDimensionOrderRouting) {
  std::mt19937 rng(97);
  const ProductGraph pg(labeled_path(3), 3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<PNode> dest(static_cast<std::size_t>(pg.num_nodes()));
    std::iota(dest.begin(), dest.end(), 0);
    std::shuffle(dest.begin(), dest.end(), rng);
    const PacketStats stats = simulate_product_permutation(pg, dest);
    EXPECT_GT(stats.steps, 0);
    EXPECT_LE(stats.steps, 200);  // 27 packets on 27 nodes: small
    EXPECT_GT(stats.total_hops, 0);
  }
}

TEST(PacketSimTest, TranspositionPermutationIsCheapOnTheProduct) {
  // The Step 4 exchange pattern (digit +-1 in one dimension) as an
  // explicit permutation: dimension-order routing delivers it in a few
  // steps, corroborating the dilation-based exec charge.
  const ProductGraph pg(labeled_path(3), 3);
  std::vector<PNode> dest(static_cast<std::size_t>(pg.num_nodes()));
  for (PNode v = 0; v < pg.num_nodes(); ++v) {
    const NodeId d3 = pg.digit(v, 3);
    const NodeId swapped = d3 == 0 ? 1 : (d3 == 1 ? 0 : 2);
    dest[static_cast<std::size_t>(v)] = pg.with_digit(v, 3, swapped);
  }
  const PacketStats stats = simulate_product_permutation(pg, dest);
  EXPECT_LE(stats.steps, 3);
  EXPECT_EQ(stats.max_link_load, 1);  // all exchanges disjoint
}

TEST(PacketSimTest, UnreachableDestinationsAreDiagnosed) {
  // A disconnected graph must not silently "deliver" packets that have
  // no path (regression: empty shortest_path used to look like a
  // self-destined packet).
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const NodeId cross[] = {2, 3, 0, 1};  // every packet crosses components
  EXPECT_THROW((void)simulate_permutation(g, cross), std::invalid_argument);
  const NodeId within[] = {1, 0, 3, 2};  // stays within components: fine
  EXPECT_EQ(simulate_permutation(g, within).steps, 1);
}

TEST(PacketSimTest, RejectsNonPermutations) {
  const Graph g = make_path(4);
  const NodeId dup[] = {0, 0, 1, 2};
  EXPECT_THROW((void)simulate_permutation(g, dup), std::invalid_argument);
  const ProductGraph pg(labeled_path(3), 2);
  std::vector<PNode> bad(9, 0);
  EXPECT_THROW((void)simulate_product_permutation(pg, bad),
               std::invalid_argument);
}

TEST(PacketSimTest, ValidationNamesTheOffendingIndex) {
  const Graph g = make_path(4);
  try {
    const NodeId dup[] = {0, 2, 2, 1};
    (void)simulate_permutation(g, dup);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dest[2] = 2"), std::string::npos) << what;
    EXPECT_NE(what.find("dest[1]"), std::string::npos) << what;
  }
  try {
    const NodeId range[] = {0, 1, 2, 7};
    (void)simulate_permutation(g, range);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dest[3] = 7"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace prodsort
