#include "product/gray_sequences.hpp"

#include <gtest/gtest.h>

namespace prodsort {
namespace {

TEST(GraySequencesTest, ReversedSequence) {
  auto seq = gray_sequence(3, 1);
  const auto rev = reversed_sequence(seq);
  EXPECT_EQ(rev.front(), (std::vector<NodeId>{2}));
  EXPECT_EQ(rev.back(), (std::vector<NodeId>{0}));
}

TEST(GraySequencesTest, IsGraySequenceAcceptsCanonical) {
  for (const auto& [n, r] : std::vector<std::pair<NodeId, int>>{
           {2, 5}, {3, 3}, {4, 3}, {5, 2}}) {
    EXPECT_TRUE(is_gray_sequence(n, gray_sequence(n, r))) << n << "," << r;
    EXPECT_TRUE(is_gray_sequence(n, reversed_sequence(gray_sequence(n, r))));
  }
}

TEST(GraySequencesTest, IsGraySequenceRejectsBadInputs) {
  EXPECT_FALSE(is_gray_sequence(3, {}));
  // Missing elements.
  auto seq = gray_sequence(3, 2);
  seq.pop_back();
  EXPECT_FALSE(is_gray_sequence(3, seq));
  // Duplicate elements.
  seq = gray_sequence(3, 2);
  seq.back() = seq.front();
  EXPECT_FALSE(is_gray_sequence(3, seq));
  // Jump of Hamming distance 2 (lexicographic order has them).
  std::vector<std::vector<NodeId>> lex;
  for (NodeId a = 0; a < 3; ++a)
    for (NodeId b = 0; b < 3; ++b) lex.push_back({b, a});
  EXPECT_FALSE(is_gray_sequence(3, lex));
}

class SubsequenceParamTest
    : public ::testing::TestWithParam<std::pair<NodeId, int>> {};

TEST_P(SubsequenceParamTest, EverySubsequenceSplitsEvenly) {
  const auto [n, r] = GetParam();
  for (int pos = 1; pos <= r; ++pos) {
    PNode covered = 0;
    for (NodeId u = 0; u < n; ++u) {
      const auto ranks = subsequence_ranks(n, r, pos, u);
      EXPECT_EQ(static_cast<PNode>(ranks.size()), pow_int(n, r - 1));
      EXPECT_TRUE(std::is_sorted(ranks.begin(), ranks.end()));
      covered += static_cast<PNode>(ranks.size());
    }
    EXPECT_EQ(covered, pow_int(n, r));
  }
}

TEST_P(SubsequenceParamTest, Position1ProjectionIsExactlyQSubR) {
  // The Step-1-is-free identity: [u]Q^1 projected equals Q_{r-1}.
  const auto [n, r] = GetParam();
  if (r < 2) return;
  const auto expected = gray_sequence(n, r - 1);
  for (NodeId u = 0; u < n; ++u)
    EXPECT_EQ(subsequence_tuples(n, r, 1, u), expected) << "u=" << u;
}

TEST_P(SubsequenceParamTest, EveryProjectionIsAGraySequence) {
  // At any position the projected subsequence is still snake-like
  // (unit Hamming distance, full coverage), the property Section 2's
  // generalized notation rests on.
  const auto [n, r] = GetParam();
  if (r < 2) return;
  for (int pos = 1; pos <= r; ++pos)
    for (NodeId u = 0; u < n; ++u)
      EXPECT_TRUE(is_gray_sequence(n, subsequence_tuples(n, r, pos, u)))
          << "pos=" << pos << " u=" << u;
}

TEST_P(SubsequenceParamTest, TopPositionAlternatesDirection)
{
  // [u]Q^r is Q_{r-1} for even u and R(Q_{r-1}) for odd u (Definition 3).
  const auto [n, r] = GetParam();
  if (r < 2) return;
  const auto forward = gray_sequence(n, r - 1);
  const auto backward = reversed_sequence(forward);
  for (NodeId u = 0; u < n; ++u)
    EXPECT_EQ(subsequence_tuples(n, r, r, u), u % 2 == 0 ? forward : backward)
        << "u=" << u;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubsequenceParamTest,
                         ::testing::Values(std::pair<NodeId, int>{2, 2},
                                           std::pair<NodeId, int>{2, 4},
                                           std::pair<NodeId, int>{3, 2},
                                           std::pair<NodeId, int>{3, 3},
                                           std::pair<NodeId, int>{4, 3},
                                           std::pair<NodeId, int>{5, 2}));

TEST(GroupSequenceTest, MatchesPaperExample) {
  // Section 2: [*]Q_2^1 for N = 3 is 00*, 01*, 02*, 12*, 11*, 10*, 20*,
  // 21*, 22* with directions {f, r, f, r, f, r, f, r, f}.
  const auto groups = group_sequence(3, 3, 1);
  ASSERT_EQ(groups.size(), 9u);
  // digits[0] = position 2, digits[1] = position 3.
  const std::vector<std::vector<NodeId>> expected = {
      {0, 0}, {1, 0}, {2, 0}, {2, 1}, {1, 1}, {0, 1}, {0, 2}, {1, 2}, {2, 2}};
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].digits, expected[i]) << i;
    EXPECT_EQ(groups[i].reversed, i % 2 == 1) << i;
  }
}

TEST(GroupSequenceTest, LabelsFormGraySequenceWithAlternatingParity) {
  for (const auto& [n, r, g] : std::vector<std::tuple<NodeId, int, int>>{
           {2, 5, 1}, {2, 5, 2}, {3, 4, 1}, {3, 4, 2}, {4, 3, 2}}) {
    const auto groups = group_sequence(n, r, g);
    EXPECT_EQ(static_cast<PNode>(groups.size()), pow_int(n, r - g));
    for (std::size_t i = 0; i + 1 < groups.size(); ++i) {
      EXPECT_EQ(hamming_distance(groups[i].digits, groups[i + 1].digits), 1);
      EXPECT_NE(groups[i].reversed, groups[i + 1].reversed);
    }
    EXPECT_FALSE(groups.front().reversed);  // all-zero label, even weight
  }
}

TEST(GroupSequenceTest, GroupsAreAlignedChunksOfQr) {
  // Chunk j of N^g consecutive Q_r elements carries group label j and is
  // traversed forward/reversed per the label's weight parity.
  const NodeId n = 3;
  const int r = 3, g = 1;
  const auto seq = gray_sequence(n, r);
  const auto groups = group_sequence(n, r, g);
  const PNode chunk = pow_int(n, g);
  for (std::size_t j = 0; j < groups.size(); ++j) {
    for (PNode t = 0; t < chunk; ++t) {
      const auto& elem = seq[j * static_cast<std::size_t>(chunk) +
                             static_cast<std::size_t>(t)];
      // High digits match the label.
      for (int i = g; i < r; ++i)
        EXPECT_EQ(elem[static_cast<std::size_t>(i)],
                  groups[j].digits[static_cast<std::size_t>(i - g)]);
      // Low digit runs forward or backward per the direction flag.
      EXPECT_EQ(elem[0], groups[j].reversed ? n - 1 - t : t);
    }
  }
}

TEST(GroupSequenceTest, Validation) {
  EXPECT_THROW((void)group_sequence(3, 3, 0), std::invalid_argument);
  EXPECT_THROW((void)group_sequence(3, 3, 3), std::invalid_argument);
  EXPECT_THROW((void)subsequence_ranks(3, 3, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)subsequence_ranks(3, 3, 1, 3), std::out_of_range);
}

}  // namespace
}  // namespace prodsort
