#include "product/gray_code.hpp"

#include <gtest/gtest.h>

#include <set>

namespace prodsort {
namespace {

TEST(PowIntTest, Basics) {
  EXPECT_EQ(pow_int(3, 0), 1);
  EXPECT_EQ(pow_int(3, 4), 81);
  EXPECT_EQ(pow_int(2, 20), 1 << 20);
  EXPECT_EQ(pow_int(10, 3), 1000);
}

TEST(HammingTest, DistanceAndWeight) {
  const NodeId a[] = {0, 2, 1};
  const NodeId b[] = {1, 2, 3};
  EXPECT_EQ(hamming_distance(a, b), 3);  // |0-1| + |2-2| + |1-3|
  EXPECT_EQ(hamming_weight(a), 3);
  EXPECT_EQ(hamming_weight(b), 6);
  const NodeId c[] = {0, 0};
  EXPECT_THROW((void)hamming_distance(a, c), std::invalid_argument);
}

TEST(GrayCodeTest, MatchesPaperExampleForNEquals3) {
  // Section 2 example: Q_2 = {00, 01, 02, 12, 11, 10, 20, 21, 22}
  // (leftmost symbol = dimension 2; our tuples store dim 1 at index 0).
  const std::vector<std::vector<NodeId>> expected = {
      {0, 0}, {1, 0}, {2, 0}, {2, 1}, {1, 1}, {0, 1}, {0, 2}, {1, 2}, {2, 2}};
  EXPECT_EQ(gray_sequence(3, 2), expected);
}

TEST(GrayCodeTest, FirstAndLastElements) {
  // Q_r starts at 00..0; with N odd it ends at (N-1)(N-1)..(N-1)-ish
  // depending on parity, but rank 0 is always the zero tuple.
  for (NodeId n : {2, 3, 4, 5}) {
    for (int r : {1, 2, 3}) {
      std::vector<NodeId> tuple(static_cast<std::size_t>(r));
      gray_tuple(n, 0, tuple);
      for (const NodeId d : tuple) EXPECT_EQ(d, 0);
    }
  }
}

class GrayCodeParamTest
    : public ::testing::TestWithParam<std::pair<NodeId, int>> {};

TEST_P(GrayCodeParamTest, RankTupleBijection) {
  const auto [n, r] = GetParam();
  const PNode total = pow_int(n, r);
  std::set<std::vector<NodeId>> seen;
  std::vector<NodeId> tuple(static_cast<std::size_t>(r));
  for (PNode rank = 0; rank < total; ++rank) {
    gray_tuple(n, rank, tuple);
    EXPECT_TRUE(seen.insert(tuple).second) << "duplicate tuple at " << rank;
    EXPECT_EQ(gray_rank(n, tuple), rank);
  }
  EXPECT_EQ(static_cast<PNode>(seen.size()), total);
}

TEST_P(GrayCodeParamTest, ConsecutiveElementsHaveUnitHammingDistance) {
  const auto [n, r] = GetParam();
  const auto seq = gray_sequence(n, r);
  for (std::size_t i = 0; i + 1 < seq.size(); ++i)
    EXPECT_EQ(hamming_distance(seq[i], seq[i + 1]), 1) << "at rank " << i;
}

TEST_P(GrayCodeParamTest, WeightParityAlternates) {
  const auto [n, r] = GetParam();
  const auto seq = gray_sequence(n, r);
  for (std::size_t i = 0; i + 1 < seq.size(); ++i)
    EXPECT_NE(hamming_weight(seq[i]) % 2, hamming_weight(seq[i + 1]) % 2);
}

TEST_P(GrayCodeParamTest, RecursivePrefixStructure) {
  // Q_r = CON{[u]Q_{r-1}}: block u has leftmost digit u, and is Q_{r-1}
  // forward (u even) or reversed (u odd).
  const auto [n, r] = GetParam();
  if (r < 2) return;
  const auto seq = gray_sequence(n, r);
  const auto sub = gray_sequence(n, r - 1);
  const PNode block = pow_int(n, r - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (PNode j = 0; j < block; ++j) {
      const auto& elem = seq[static_cast<std::size_t>(u * block + j)];
      EXPECT_EQ(elem[static_cast<std::size_t>(r - 1)], u);
      const PNode sub_rank = (u % 2 == 0) ? j : block - 1 - j;
      const auto& expect = sub[static_cast<std::size_t>(sub_rank)];
      for (int i = 0; i < r - 1; ++i)
        EXPECT_EQ(elem[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)]);
    }
  }
}

TEST_P(GrayCodeParamTest, SubsequencePositionLaw) {
  // Section 2: the elements with rightmost symbol u sit at ranks
  // u, 2N-u-1, 2N+u, 4N-u-1, ... — and in that order they themselves form
  // the Gray sequence of order r-1 (the Step-1-is-free identity).
  const auto [n, r] = GetParam();
  if (r < 2) return;
  const auto seq = gray_sequence(n, r);
  const auto sub = gray_sequence(n, r - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (PNode j = 0; j < pow_int(n, r - 1); ++j) {
      const PNode pos = subsequence_position(n, u, j);
      const auto& elem = seq[static_cast<std::size_t>(pos)];
      EXPECT_EQ(elem[0], u) << "u=" << u << " j=" << j;
      // Digits 2..r of the j-th member equal the (r-1)-order Gray tuple j.
      const auto& expect = sub[static_cast<std::size_t>(j)];
      for (int i = 1; i < r; ++i)
        EXPECT_EQ(elem[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i - 1)])
            << "u=" << u << " j=" << j << " digit " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GrayCodeParamTest,
    ::testing::Values(std::pair<NodeId, int>{2, 1}, std::pair<NodeId, int>{2, 4},
                      std::pair<NodeId, int>{2, 8}, std::pair<NodeId, int>{3, 1},
                      std::pair<NodeId, int>{3, 3}, std::pair<NodeId, int>{3, 5},
                      std::pair<NodeId, int>{4, 3}, std::pair<NodeId, int>{5, 3},
                      std::pair<NodeId, int>{7, 2}, std::pair<NodeId, int>{10, 2}));

TEST(GrayCodeTest, RangeChecks) {
  std::vector<NodeId> tuple(3);
  EXPECT_THROW(gray_tuple(3, -1, tuple), std::out_of_range);
  EXPECT_THROW(gray_tuple(3, 27, tuple), std::out_of_range);
  const NodeId bad[] = {0, 3, 0};
  EXPECT_THROW((void)gray_rank(3, bad), std::out_of_range);
  EXPECT_THROW((void)subsequence_position(3, 3, 0), std::out_of_range);
}

}  // namespace
}  // namespace prodsort
