// Fuzz coverage for the FaultModel schedule-string round trip.
//
// FAULT-REPRO / SDC-REPRO lines embed schedule_string() verbatim and
// --repro replays them through parse_schedule_string(), so the pair
// must be a lossless inverse on every valid config — including the
// comparator-fault entries — and must reject arbitrary junk with a
// typed exception instead of crashing or mis-parsing.  Rates are drawn
// from a grid of short decimal literals because schedule_string prints
// %g (6 significant digits): every grid value survives the
// print-then-parse trip bit-identically, which is exactly the property
// the repro lines rely on (they only ever carry values that were
// printed by schedule_string in the first place).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/block_sort.hpp"
#include "core/verify.hpp"
#include "durability/journal.hpp"
#include "graph/labeled_factor.hpp"
#include "network/block_machine.hpp"
#include "network/fault_model.hpp"
#include "stream_repro.hpp"
#include "product/subgraph_view.hpp"

namespace prodsort {
namespace {

FaultConfig random_config(std::mt19937_64& rng) {
  static const double kRates[] = {0, 0, 0.5, 0.25, 0.125, 0.001, 1e-05, 0.75};
  const auto rate = [&rng] {
    return kRates[rng() % (sizeof kRates / sizeof kRates[0])];
  };
  FaultConfig config;
  config.seed = rng();
  config.packet_drop_rate = rate();
  config.ce_drop_rate = rate();
  config.key_corrupt_rate = rate();
  config.failed_links = static_cast<int>(rng() % 4);
  config.stragglers = static_cast<int>(rng() % 4);
  config.straggler_factor = 1 + static_cast<int>(rng() % 8);
  const std::size_t crashes = rng() % 5;
  for (std::size_t i = 0; i < crashes; ++i) {
    CrashEvent event;
    event.node = static_cast<PNode>(rng() % 1000);
    event.phase = static_cast<std::int64_t>(rng() % 10000);
    event.permanent = (rng() & 1) != 0;
    config.crash_schedule.push_back(event);
  }
  const std::size_t outages = rng() % 4;
  std::int64_t cursor = static_cast<std::int64_t>(rng() % 100);
  for (std::size_t i = 0; i < outages; ++i) {
    OutageWindow w;
    w.from = cursor;
    w.until = w.from + 1 + static_cast<std::int64_t>(rng() % 5000);
    cursor = w.until + static_cast<std::int64_t>(rng() % 100);
    config.outage_schedule.push_back(w);
  }
  const std::size_t bursts = rng() % 4;
  for (std::size_t i = 0; i < bursts; ++i) {
    CrashBurst b;
    b.count = 1 + static_cast<int>(rng() % 8);
    b.phase = static_cast<std::int64_t>(rng() % 10000);
    b.permanent = (rng() & 1) != 0;
    config.burst_schedule.push_back(b);
  }
  const std::size_t faults = rng() % 5;
  for (std::size_t i = 0; i < faults; ++i) {
    ComparatorFault fault;
    fault.node = static_cast<PNode>(rng() % 1000);
    fault.from_phase = static_cast<std::int64_t>(rng() % 10000);
    fault.until_phase = (rng() & 3) == 0
                            ? -1
                            : fault.from_phase + 1 +
                                  static_cast<std::int64_t>(rng() % 500);
    switch (rng() % 3) {
      case 0: fault.kind = ComparatorFaultKind::kStuckPassThrough; break;
      case 1: fault.kind = ComparatorFaultKind::kInverted; break;
      default: fault.kind = ComparatorFaultKind::kArbitrary; break;
    }
    // Burst widths (the `xB` suffix) only exist for arbitrary faults.
    if (fault.kind == ComparatorFaultKind::kArbitrary && (rng() & 1) != 0)
      fault.burst = 2 + static_cast<int>(rng() % 7);
    config.comparator_schedule.push_back(fault);
  }
  return config;
}

TEST(ScheduleFuzz, RoundTripsRandomValidSchedules) {
  std::mt19937_64 rng(20260805);
  for (int iter = 0; iter < 500; ++iter) {
    const FaultConfig config = random_config(rng);
    const FaultModel model(config);
    const std::string schedule = model.schedule_string();
    const FaultConfig parsed = FaultModel::parse_schedule_string(schedule);
    ASSERT_EQ(parsed, config) << "schedule: " << schedule;
    // And the string itself is a fixed point of the round trip.
    ASSERT_EQ(FaultModel(parsed).schedule_string(), schedule);
  }
}

TEST(ScheduleFuzz, ComparatorEntriesRoundTripAllKinds) {
  FaultConfig config;
  config.seed = 5;
  config.comparator_schedule = {
      {.node = 5, .from_phase = 2, .until_phase = 9,
       .kind = ComparatorFaultKind::kInverted},
      {.node = 7, .from_phase = 0, .until_phase = -1,
       .kind = ComparatorFaultKind::kArbitrary},
      {.node = 0, .from_phase = 11, .until_phase = 12,
       .kind = ComparatorFaultKind::kStuckPassThrough},
      {.node = 3, .from_phase = 1, .until_phase = 4,
       .kind = ComparatorFaultKind::kArbitrary, .burst = 3},
  };
  const std::string schedule = FaultModel(config).schedule_string();
  EXPECT_NE(schedule.find("comparators=5@2~9I+7@0A+0@11~12S+3@1~4Ax3"),
            std::string::npos)
      << schedule;
  EXPECT_EQ(FaultModel::parse_schedule_string(schedule), config);
}

TEST(ScheduleFuzz, RejectsMalformedComparatorEntries) {
  const char* const malformed[] = {
      "seed=1,comparators=",          // empty list
      "seed=1,comparators=5",         // no @phase
      "seed=1,comparators=5@",        // dangling @
      "seed=1,comparators=5@2",       // missing kind char
      "seed=1,comparators=5@2X",      // unknown kind
      "seed=1,comparators=5@2~1I",    // empty window (until <= from)
      "seed=1,comparators=5@2~2I",    // empty window (until == from)
      "seed=1,comparators=-5@2I",     // negative node
      "seed=1,comparators=5@-2I",     // negative phase
      "seed=1,comparators=5@2I+",     // dangling +
      "seed=1,comparators=5@2~I",     // empty until token
      "seed=1,comparators=5@twoI",    // non-numeric phase
      "seed=1,comparators=5@2Ax",     // dangling burst
      "seed=1,comparators=5@2Ax0",    // burst must be >= 1
      "seed=1,comparators=5@2Ax-3",   // negative burst
      "seed=1,comparators=5@2Axx3",   // doubled burst marker
      "seed=1,comparators=5@2Ix3",    // burst on a non-arbitrary kind
      "seed=1,comparators=5@2Sx2",    // burst on a non-arbitrary kind
  };
  for (const char* schedule : malformed)
    EXPECT_THROW((void)FaultModel::parse_schedule_string(schedule),
                 std::invalid_argument)
        << schedule;
}

// Satellite requirement: the correlated-fault fields added for the
// federated router — outage windows and crash bursts — reject truncated,
// junk-suffixed, and negative-width tokens with the same named error
// the rest of the grammar uses.
TEST(ScheduleFuzz, RejectsMalformedOutageAndBurstEntries) {
  const char* const malformed[] = {
      "seed=1,outages=",          // empty list
      "seed=1,outages=5",         // no ~until
      "seed=1,outages=5~",        // truncated window
      "seed=1,outages=~9",        // missing from
      "seed=1,outages=9~4",       // negative width (until < from)
      "seed=1,outages=4~4",       // empty window (until == from)
      "seed=1,outages=-2~9",      // negative start
      "seed=1,outages=1~2x",      // junk suffix on until
      "seed=1,outages=one~9",     // non-numeric from
      "seed=1,outages=1~2+",      // dangling +
      "seed=1,outages=1~2+~",     // dangling second entry
      "seed=1,bursts=",           // empty list
      "seed=1,bursts=3",          // no @phase
      "seed=1,bursts=3@",         // truncated
      "seed=1,bursts=@5",         // missing count
      "seed=1,bursts=0@5",        // zero victims
      "seed=1,bursts=-1@5",       // negative count
      "seed=1,bursts=2@-3",       // negative phase
      "seed=1,bursts=2@3Q",       // junk suffix (only P is legal)
      "seed=1,bursts=2@3PP",      // doubled flag
      "seed=1,bursts=2@3+",       // dangling +
  };
  for (const char* schedule : malformed) {
    try {
      (void)FaultModel::parse_schedule_string(schedule);
      FAIL() << "accepted malformed schedule: " << schedule;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("malformed schedule field"),
                std::string::npos)
          << schedule << " -> " << e.what();
    }
  }

  // The documented forms parse.
  EXPECT_NO_THROW(FaultModel::parse_schedule_string(
      "seed=1,outages=0~128+512~700,bursts=3@9+1@40P"));
}

// Random junk must produce std::invalid_argument (or parse, if it
// happens to be valid) — never crash, hang, or leak any other
// exception type out of the parser.
TEST(ScheduleFuzz, JunkNeverCrashes) {
  std::mt19937_64 rng(97);
  const std::string charset = "0123456789seedropcruptlinkstagx.,=@~+-SIAPZ ";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string junk(rng() % 64, '\0');
    for (char& c : junk) c = charset[rng() % charset.size()];
    try {
      (void)FaultModel::parse_schedule_string(junk);
    } catch (const std::invalid_argument&) {
      // expected for most inputs
    }
  }
}

// Overlapping comparator windows on a handful of nodes, driven through
// an actual BlockMachine sort after a schedule-string round trip.  The
// earliest matching entry wins at each step; whatever the overlap
// pattern, the sort must terminate, keep every block at size b, and —
// when no arbitrary faults are in play — preserve the key multiset.
TEST(ScheduleFuzz, OverlappingBlockSchedulesNeverCrash) {
  constexpr int kBlock = 2;
  const ProductGraph pg(labeled_path(4), 2);
  const PNode n = pg.num_nodes();
  const BlockSnakeOETS2 oet;
  std::mt19937_64 rng(777);
  for (int iter = 0; iter < 60; ++iter) {
    FaultConfig config;
    config.seed = rng();
    const std::size_t entries = 1 + rng() % 6;
    bool any_arbitrary = false;
    for (std::size_t i = 0; i < entries; ++i) {
      ComparatorFault fault;
      fault.node = static_cast<PNode>(rng() % 4);  // few nodes → overlaps
      fault.from_phase = static_cast<std::int64_t>(rng() % 6);
      fault.until_phase =
          (rng() & 3) == 0
              ? -1
              : fault.from_phase + 1 + static_cast<std::int64_t>(rng() % 8);
      switch (rng() % 3) {
        case 0: fault.kind = ComparatorFaultKind::kStuckPassThrough; break;
        case 1: fault.kind = ComparatorFaultKind::kInverted; break;
        default:
          fault.kind = ComparatorFaultKind::kArbitrary;
          fault.burst = 1 + static_cast<int>(rng() % kBlock);
          any_arbitrary = true;
          break;
      }
      config.comparator_schedule.push_back(fault);
    }
    // Replay through the string form, exactly as --repro does.
    const FaultConfig parsed =
        FaultModel::parse_schedule_string(FaultModel(config).schedule_string());
    ASSERT_EQ(parsed, config);

    FaultModel fm(parsed);
    std::vector<Key> keys(static_cast<std::size_t>(n) * kBlock);
    for (Key& k : keys) k = static_cast<Key>(rng() % 4096);
    BlockMachine machine(pg, keys, kBlock);
    machine.set_fault_model(&fm);
    BlockSortOptions options;
    options.s2 = &oet;
    (void)sort_block_network(machine, options);
    const std::vector<Key> out = machine.read_snake(full_view(pg));
    ASSERT_EQ(out.size(), keys.size());
    if (!any_arbitrary) {
      ASSERT_EQ(multiset_checksum(out), multiset_checksum(keys))
          << FaultModel(config).schedule_string();
    }
  }
}

// Single-character mutations of a valid schedule — the way a repro
// line actually gets corrupted (truncated paste, flipped char) — are
// either still parseable or rejected with the typed error.
TEST(ScheduleFuzz, MutatedValidSchedulesNeverCrash) {
  std::mt19937_64 rng(31);
  for (int iter = 0; iter < 500; ++iter) {
    const FaultModel model(random_config(rng));
    std::string schedule = model.schedule_string();
    const std::size_t pos = rng() % schedule.size();
    switch (rng() % 3) {
      case 0: schedule[pos] = static_cast<char>('!' + rng() % 90); break;
      case 1: schedule.erase(pos, 1); break;
      default: schedule = schedule.substr(0, pos); break;
    }
    try {
      (void)FaultModel::parse_schedule_string(schedule);
    } catch (const std::invalid_argument&) {
      // expected when the mutation broke a token
    }
  }
}

// --- STREAM-REPRO token fuzz (tools/stream_repro.hpp) -------------------
//
// The streaming replay line embeds the per-domain outage grammar and a
// couple dozen typed tokens; like the fault-schedule grammar above, the
// print-then-parse pair must be a lossless inverse on every valid
// config and reject mutations with a *named* std::invalid_argument.

StreamRepro random_stream_repro(std::mt19937_64& rng) {
  static const double kRates[] = {0, 0, 0.5, 0.25, 0.125, 0.01, 0.001};
  StreamRepro r;
  r.config.seed = rng();
  r.config.batches = 1 + static_cast<int>(rng() % 200);
  r.config.batch_keys = 1 + static_cast<std::int64_t>(rng() % 5000);
  r.config.pattern = static_cast<int>(rng() % 5);
  r.config.batch_interval = 1 + static_cast<std::int64_t>(rng() % 512);
  r.config.ranges = 1 + static_cast<int>(rng() % 16);
  r.config.sample_keys = 1 + static_cast<std::int64_t>(rng() % 512);
  r.config.block = 1 + static_cast<int>(rng() % 64);
  r.config.budget_bytes = r.config.batch_keys * 8 +
                          static_cast<std::int64_t>(rng() % (1 << 20));
  r.config.backends = 1 + static_cast<int>(rng() % 8);
  r.config.domains = 1 + static_cast<int>(rng() % 4);
  r.config.faulty = static_cast<int>(rng() % (r.config.backends + 1));
  r.config.tear_rate = kRates[rng() % 7];
  r.config.crash_rate = kRates[rng() % 7];
  r.config.retry_limit = 1 + static_cast<int>(rng() % 16);
  r.config.backoff_base = 1 + static_cast<std::int64_t>(rng() % 64);
  r.config.backoff_cap = r.config.backoff_base +
                         static_cast<std::int64_t>(rng() % 1024);
  r.config.breaker.failure_threshold = 1 + static_cast<int>(rng() % 8);
  r.config.breaker.cooldown = 1 + static_cast<std::int64_t>(rng() % 4096);
  r.size = 3 + static_cast<int>(rng() % 4);
  r.dims = 2 + static_cast<int>(rng() % 2);
  r.threads = 1 + static_cast<int>(rng() % 8);
  r.chain = rng();
  r.hash = rng();
  // Outage windows over the domains this config actually has (the
  // budget/outage interaction: both ride the same line and must
  // round-trip together).
  const int domains = std::min(r.config.domains, r.config.backends);
  const std::size_t windows = rng() % 4;
  std::string outage;
  for (std::size_t i = 0; i < windows; ++i) {
    const std::int64_t from = static_cast<std::int64_t>(rng() % 10000);
    const std::int64_t until = from + 1 + static_cast<std::int64_t>(rng() % 5000);
    if (!outage.empty()) outage += '+';
    outage += std::to_string(rng() % static_cast<std::uint64_t>(domains)) +
              "@" + std::to_string(from) + "~" + std::to_string(until);
  }
  r.config.outage = outage;
  // Half the lines are durable runs: the journal= token (the io-fault
  // schedule) rides the line and must round-trip with everything else.
  if (rng() & 1) {
    r.journal = true;
    r.config.io_faults.seed = rng();
    r.config.io_faults.short_write_rate = kRates[rng() % 7];
    r.config.io_faults.drop_sync_rate = kRates[rng() % 7];
    r.config.io_faults.read_corrupt_rate = kRates[rng() % 7];
  }
  return r;
}

TEST(ScheduleFuzz, StreamReproRoundTripsRandomValidLines) {
  std::mt19937_64 rng(51);
  for (int iter = 0; iter < 500; ++iter) {
    const StreamRepro r = random_stream_repro(rng);
    const std::string line = format_stream_repro(r);
    const StreamRepro p = parse_stream_repro(line);
    EXPECT_EQ(format_stream_repro(p), line)
        << "format(parse(format(x))) must be a fixed point";
    EXPECT_EQ(p.config.budget_bytes, r.config.budget_bytes);
    EXPECT_EQ(p.config.outage, r.config.outage);
    EXPECT_EQ(p.config.tear_rate, r.config.tear_rate);
    EXPECT_EQ(p.chain, r.chain);
    EXPECT_EQ(p.hash, r.hash);
    EXPECT_EQ(p.journal, r.journal);
    EXPECT_EQ(p.config.io_faults, r.config.io_faults);
    // And the outage schedule itself survives its own round trip under
    // the line's domain count.
    const int domains = std::min(p.config.domains, p.config.backends);
    const auto windows = parse_domain_outages(p.config.outage, domains);
    EXPECT_EQ(parse_domain_outages(format_domain_outages(windows), domains),
              windows);
  }
}

TEST(ScheduleFuzz, MutatedStreamReproLinesNeverCrash) {
  std::mt19937_64 rng(52);
  int rejected = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    std::string line = format_stream_repro(random_stream_repro(rng));
    const std::size_t pos = rng() % line.size();
    switch (rng() % 3) {
      case 0: line[pos] = static_cast<char>('!' + rng() % 90); break;
      case 1: line.erase(pos, 1); break;
      default: line = line.substr(0, pos); break;
    }
    try {
      (void)parse_stream_repro(line);
    } catch (const std::invalid_argument& e) {
      ++rejected;
      const std::string what = e.what();
      EXPECT_TRUE(what.find("STREAM-REPRO") != std::string::npos ||
                  what.find("missing required token") != std::string::npos ||
                  what.find("outage token") != std::string::npos ||
                  what.find("journal token") != std::string::npos)
          << "rejection must carry a named error, got: " << what;
    }
  }
  EXPECT_GT(rejected, 0) << "mutations should break at least some lines";
}

// --- durability: journal= token and record grammar ----------------------
//
// The journal's record stream is the third replayable grammar in the
// repo (after the fault schedule and the repro lines) and gets the
// same treatment: valid inputs round-trip bit-identically, mutated
// ones are rejected with a *named* error, and nothing ever crashes.

TEST(ScheduleFuzz, IoFaultTokenRoundTripsAndRejectsMutations) {
  static const double kRates[] = {0, 0.5, 0.25, 0.125, 0.01, 0.001, 1e-05};
  std::mt19937_64 rng(53);
  int rejected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    IoFaultConfig cfg;
    cfg.seed = rng();
    cfg.short_write_rate = kRates[rng() % 7];
    cfg.drop_sync_rate = kRates[rng() % 7];
    cfg.read_corrupt_rate = kRates[rng() % 7];
    const std::string token = format_io_faults(cfg);
    EXPECT_EQ(parse_io_faults(token), cfg)
        << "parse(format(x)) must be the identity on " << token;

    std::string mutated = token;
    const std::size_t pos = rng() % mutated.size();
    switch (rng() % 3) {
      case 0: mutated[pos] = static_cast<char>('!' + rng() % 90); break;
      case 1: mutated.erase(pos, 1); break;
      default: mutated = mutated.substr(0, pos); break;
    }
    try {
      const IoFaultConfig back = parse_io_faults(mutated);
      // A mutation can land on another valid token (e.g. a digit of a
      // seed); it must then parse to a *different* config or be the
      // rare no-op-shaped edit — never mis-parse into silence.
      (void)back;
    } catch (const std::invalid_argument& e) {
      ++rejected;
      EXPECT_NE(std::string(e.what()).find("journal token"),
                std::string::npos)
          << "rejection must name the token, got: " << e.what();
    }
  }
  EXPECT_GT(rejected, 0) << "mutations should break at least some tokens";
}

TEST(ScheduleFuzz, JournalRecordStreamsRoundTripAndRejectRot) {
  std::mt19937_64 rng(54);
  for (int iter = 0; iter < 200; ++iter) {
    // A random valid record stream replays losslessly.
    const std::size_t count = 1 + rng() % 8;
    std::string buffer;
    std::vector<std::string> payloads;
    for (std::uint64_t seq = 1; seq <= count; ++seq) {
      std::string payload(rng() % 64, '\0');
      for (char& c : payload) c = static_cast<char>(rng() & 0xff);
      payloads.push_back(payload);
      buffer += encode_record(
          seq, static_cast<RecordType>(1 + rng() % 8), payload);
    }
    const JournalReplay replay = replay_journal_buffer(buffer);
    ASSERT_EQ(replay.records.size(), count);
    EXPECT_FALSE(replay.torn_tail);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(replay.records[i].payload, payloads[i]);

    // One flipped bit is always classified: rot (a named throw) when
    // committed data follows, a discarded torn tail when it lands in
    // the final record — never silently replayed as valid.
    std::string rotted = buffer;
    const std::size_t byte = rng() % rotted.size();
    rotted[byte] = static_cast<char>(rotted[byte] ^ (1u << (rng() % 8)));
    try {
      const JournalReplay damaged = replay_journal_buffer(rotted);
      EXPECT_TRUE(damaged.torn_tail)
          << "an absorbed flip at byte " << byte << " must be a torn tail";
      EXPECT_LT(damaged.records.size(), count);
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("journal corrupt"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ScheduleFuzz, TypedJournalPayloadsRejectTruncationByName) {
  // Every typed record refuses a truncated or padded payload with an
  // error naming its own record type — corruption the CRC cannot see
  // (the record committed fine; its *shape* is wrong).
  FingerprintAccumulator acc;
  acc.absorb(42);
  const FingerprintState fp = acc.state();
  const std::vector<std::pair<const char*, std::string>> encoded = {
      {"batch-ingested", BatchIngestedRecord{1, 2, 3, 4}.encode()},
      {"run-dispatched", RunDispatchedRecord{1, 2, 3, 4, fp, 5}.encode()},
      {"run-verified", RunVerifiedRecord{1, 2, fp, 3}.encode()},
      {"ingest-done", IngestDoneRecord{1, fp, 2, 3, 4, 5, 6}.encode()},
      {"range-sealed", RangeSealedRecord{1, 2, fp, 1, 3, 4, 5}.encode()},
      {"ledger-delta", LedgerDeltaRecord{1, 2, 3, 4}.encode()},
      {"snapshot", SnapshotRecord{1, fp, 2, 3, 4, 5, 6}.encode()},
  };
  const auto decode = [](const char* name, const std::string& payload) {
    const std::string_view p(payload);
    if (std::string(name) == "batch-ingested")
      (void)BatchIngestedRecord::decode(p);
    else if (std::string(name) == "run-dispatched")
      (void)RunDispatchedRecord::decode(p);
    else if (std::string(name) == "run-verified")
      (void)RunVerifiedRecord::decode(p);
    else if (std::string(name) == "ingest-done")
      (void)IngestDoneRecord::decode(p);
    else if (std::string(name) == "range-sealed")
      (void)RangeSealedRecord::decode(p);
    else if (std::string(name) == "ledger-delta")
      (void)LedgerDeltaRecord::decode(p);
    else
      (void)SnapshotRecord::decode(p);
  };
  for (const auto& [name, payload] : encoded) {
    decode(name, payload);  // the intact payload parses
    for (const std::string& bad :
         {payload.substr(0, payload.size() / 2), payload + "x"}) {
      try {
        decode(name, bad);
        FAIL() << name << " must reject a mis-shaped payload";
      } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
            << "error must name the record type, got: " << e.what();
      }
    }
  }
}

}  // namespace
}  // namespace prodsort
