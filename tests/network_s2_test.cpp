#include "core/s2/network_s2.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/product_sort.hpp"
#include "product/snake_order.hpp"
#include "sortnet/batcher.hpp"
#include "sortnet/multiway_network.hpp"

namespace prodsort {
namespace {

std::vector<Key> random_keys(PNode count, unsigned seed) {
  std::vector<Key> keys(static_cast<std::size_t>(count));
  std::mt19937 rng(seed);
  for (Key& k : keys) k = static_cast<Key>(rng() % 997);
  return keys;
}

TEST(NetworkS2Test, BatcherNetworkSortsTwoDimensionalProducts) {
  // The Section 5.5 mode: Batcher executed over the snake of PG_2.
  for (const LabeledFactor& f :
       {labeled_k2(), labeled_path(4), labeled_de_bruijn(3),
        labeled_shuffle_exchange(3)}) {
    const ProductGraph pg(f, 2);
    const NetworkS2 s2(
        odd_even_merge_sort_network(static_cast<int>(pg.num_nodes())));
    Machine m(pg, random_keys(pg.num_nodes(), 3));
    std::vector<Key> expected(m.keys().begin(), m.keys().end());
    std::sort(expected.begin(), expected.end());
    s2.sort_view(m, full_view(pg));
    EXPECT_EQ(m.read_snake(full_view(pg)), expected) << f.name;
  }
}

TEST(NetworkS2Test, WorksAsTheS2InsideTheFullSort) {
  const LabeledFactor f = labeled_de_bruijn(2);  // N = 4
  const ProductGraph pg(f, 3);
  const NetworkS2 s2(odd_even_merge_sort_network(16));
  const auto keys = random_keys(pg.num_nodes(), 5);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());

  Machine m(pg, keys);
  SortOptions options;
  options.s2 = &s2;
  options.validate_levels = true;
  const SortReport report = sort_product_network(m, options);
  EXPECT_EQ(m.read_snake(full_view(pg)), expected);
  EXPECT_EQ(report.cost.s2_phases, 4);
}

TEST(NetworkS2Test, MultiwayNetworkAsS2ClosesTheLoop) {
  // The generalized construction feeding itself: multiway_sort_network
  // as the PG_2 sorter of the network algorithm.
  const LabeledFactor f = labeled_path(3);
  const ProductGraph pg(f, 3);
  const NetworkS2 s2(multiway_sort_network(3, 2));
  const auto keys = random_keys(pg.num_nodes(), 7);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());
  Machine m(pg, keys);
  SortOptions options;
  options.s2 = &s2;
  (void)sort_product_network(m, options);
  EXPECT_EQ(m.read_snake(full_view(pg)), expected);
}

TEST(NetworkS2Test, DescendingViews) {
  const ProductGraph pg(labeled_path(3), 2);
  const NetworkS2 s2(odd_even_transposition_network(9));
  Machine m(pg, random_keys(pg.num_nodes(), 9));
  std::vector<Key> expected(m.keys().begin(), m.keys().end());
  std::sort(expected.begin(), expected.end(), std::greater<Key>{});
  s2.sort_view(m, full_view(pg), /*descending=*/true);
  EXPECT_EQ(m.read_snake(full_view(pg)), expected);
}

TEST(NetworkS2Test, PhaseCostReflectsEmulationDistance) {
  // On K2 (PG_2 = 4-cycle, diameter 2), Batcher's 3 layers cost at most
  // 3 * 2; on a Hamiltonian path factor partners can sit farther apart.
  const double k2_cost = NetworkS2(odd_even_merge_sort_network(4))
                             .phase_cost(labeled_k2());
  EXPECT_GE(k2_cost, 3.0);
  EXPECT_LE(k2_cost, 6.0);
  const double grid_cost = NetworkS2(odd_even_merge_sort_network(16))
                               .phase_cost(labeled_path(4));
  EXPECT_GT(grid_cost, 0.0);
  EXPECT_LE(grid_cost, 10.0 * 6.0);  // depth 10, diameter 6
}

TEST(NetworkS2Test, RejectsWidthMismatch) {
  const ProductGraph pg(labeled_path(3), 2);
  const NetworkS2 s2(odd_even_merge_sort_network(8));  // width 8 != 9
  Machine m(pg, std::vector<Key>(9, 0));
  EXPECT_THROW(s2.sort_view(m, full_view(pg)), std::invalid_argument);
  EXPECT_THROW((void)s2.phase_cost(labeled_path(3)), std::invalid_argument);
}

TEST(NetworkS2Test, UpperDimensionViews) {
  // Views with free dims {2,3}: the partner-distance computation must
  // use the view's own dimensions.
  const ProductGraph pg(labeled_path(3), 3);
  const NetworkS2 s2(multiway_sort_network(3, 2));
  Machine m(pg, random_keys(pg.num_nodes(), 11));
  const auto views = all_views(pg, 2, 3);
  s2.sort_views(m, views, std::vector<bool>(views.size(), false));
  for (const ViewSpec& v : views) EXPECT_TRUE(m.snake_sorted(v));
}

}  // namespace
}  // namespace prodsort
