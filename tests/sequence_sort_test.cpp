#include "core/sequence_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "product/gray_code.hpp"
#include "sortnet/zero_one.hpp"

namespace prodsort {
namespace {

TEST(PowerArityTest, RecognizesPowers) {
  int r = 0;
  EXPECT_TRUE(power_arity(8, 2, r));
  EXPECT_EQ(r, 3);
  EXPECT_TRUE(power_arity(27, 3, r));
  EXPECT_EQ(r, 3);
  EXPECT_TRUE(power_arity(3, 3, r));
  EXPECT_EQ(r, 1);
  EXPECT_FALSE(power_arity(12, 3, r));
  EXPECT_FALSE(power_arity(1, 3, r));
  EXPECT_FALSE(power_arity(8, 1, r));
}

TEST(SequenceSortTest, RejectsNonPowerSizes) {
  std::vector<Key> keys(10);
  EXPECT_THROW((void)multiway_merge_sort(keys, 3), std::invalid_argument);
}

TEST(SequenceSortTest, DegenerateSingleDimension) {
  std::vector<Key> keys = {3, 1, 2};
  (void)multiway_merge_sort(keys, 3);
  EXPECT_EQ(keys, (std::vector<Key>{1, 2, 3}));
}

class SequenceSortParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // (N, r)

TEST_P(SequenceSortParamTest, SortsRandomInputs) {
  const auto [n, r] = GetParam();
  const std::int64_t total = pow_int(n, r);
  std::mt19937 rng(static_cast<unsigned>(n * 31 + r));
  std::uniform_int_distribution<Key> dist(-1000, 1000);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Key> keys(static_cast<std::size_t>(total));
    for (Key& k : keys) k = dist(rng);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());
    (void)multiway_merge_sort(keys, static_cast<NodeId>(n));
    EXPECT_EQ(keys, expected);
  }
}

TEST_P(SequenceSortParamTest, SortsAdversarialPatterns) {
  const auto [n, r] = GetParam();
  const std::int64_t total = pow_int(n, r);
  std::vector<std::vector<Key>> patterns;

  std::vector<Key> asc(static_cast<std::size_t>(total));
  std::iota(asc.begin(), asc.end(), 0);
  patterns.push_back(asc);

  std::vector<Key> desc = asc;
  std::reverse(desc.begin(), desc.end());
  patterns.push_back(desc);

  std::vector<Key> organ(static_cast<std::size_t>(total));  // organ pipe
  for (std::int64_t i = 0; i < total; ++i)
    organ[static_cast<std::size_t>(i)] = std::min(i, total - 1 - i);
  patterns.push_back(organ);

  patterns.emplace_back(static_cast<std::size_t>(total), Key{42});  // constant

  std::vector<Key> sawtooth(static_cast<std::size_t>(total));
  for (std::int64_t i = 0; i < total; ++i)
    sawtooth[static_cast<std::size_t>(i)] = i % 5;
  patterns.push_back(sawtooth);

  for (auto& keys : patterns) {
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());
    (void)multiway_merge_sort(keys, static_cast<NodeId>(n));
    EXPECT_EQ(keys, expected);
  }
}

TEST_P(SequenceSortParamTest, ZeroOnePrinciple) {
  const auto [n, r] = GetParam();
  const std::int64_t total = pow_int(n, r);
  if (total > 20) {
    // Too many 0-1 inputs to enumerate: random-sample them instead.
    std::mt19937 rng(static_cast<unsigned>(n + r));
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<Key> keys(static_cast<std::size_t>(total));
      for (Key& k : keys) k = static_cast<Key>(rng() & 1u);
      std::vector<Key> expected = keys;
      std::sort(expected.begin(), expected.end());
      (void)multiway_merge_sort(keys, static_cast<NodeId>(n));
      ASSERT_EQ(keys, expected);
    }
    return;
  }
  const auto failures = count_zero_one_failures(
      static_cast<int>(total),
      [n = n](std::span<Key> v) {
        std::vector<Key> keys(v.begin(), v.end());
        (void)multiway_merge_sort(keys, static_cast<NodeId>(n));
        std::copy(keys.begin(), keys.end(), v.begin());
      });
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SequenceSortParamTest,
    ::testing::Values(std::pair<int, int>{2, 2}, std::pair<int, int>{2, 3},
                      std::pair<int, int>{2, 4}, std::pair<int, int>{2, 6},
                      std::pair<int, int>{3, 2}, std::pair<int, int>{3, 3},
                      std::pair<int, int>{3, 4}, std::pair<int, int>{4, 3},
                      std::pair<int, int>{5, 2}, std::pair<int, int>{5, 3},
                      std::pair<int, int>{10, 2}));

TEST(SequenceSortTest, StatsAccumulateAcrossLevels) {
  // N = 2, r = 4: 4 initial base sorts, then merges at k = 3 (two of
  // them) and k = 4 (one).
  std::vector<Key> keys(16);
  std::mt19937 rng(7);
  for (Key& k : keys) k = static_cast<Key>(rng() % 100);
  const MergeStats stats = multiway_merge_sort(keys, 2);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Merge-invocation recurrence M(2)=1, M(m)=1+2M(m/2):
  // level k=3 has two groups of M(4)=3, level k=4 one group of M(8)=7.
  EXPECT_EQ(stats.merges, 2 * 3 + 7);
  // Base sorts: 4 initial + 2*B(4) + B(8) with B(2)=1, B(m)=2B(m/2).
  EXPECT_EQ(stats.base_sorts, 4 + 2 * 2 + 4);
}

}  // namespace
}  // namespace prodsort
