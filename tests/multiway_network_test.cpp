#include "sortnet/multiway_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "sortnet/batcher.hpp"
#include "sortnet/zero_one.hpp"

namespace prodsort {
namespace {

// ------------------------------------------------------- merge networks

void expect_merges(int n, int m) {
  const MergeNetwork mn = multiway_merge_network(n, m);
  ASSERT_EQ(mn.network.width(), n * m);
  ASSERT_EQ(static_cast<int>(mn.output_order.size()), n * m);

  // Exhaustive 0-1: all zero-count profiles of the N sorted segments.
  std::vector<int> zeros(static_cast<std::size_t>(n), 0);
  for (;;) {
    std::vector<Key> v(static_cast<std::size_t>(n) * m, 1);
    for (int u = 0; u < n; ++u)
      std::fill_n(v.begin() + static_cast<std::ptrdiff_t>(u * m),
                  zeros[static_cast<std::size_t>(u)], 0);
    mn.network.apply(v);
    for (std::size_t j = 0; j + 1 < mn.output_order.size(); ++j)
      ASSERT_LE(v[static_cast<std::size_t>(mn.output_order[j])],
                v[static_cast<std::size_t>(mn.output_order[j + 1])])
          << "N=" << n << " m=" << m;
    int i = 0;
    while (i < n && zeros[static_cast<std::size_t>(i)] == m) {
      zeros[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) break;
    ++zeros[static_cast<std::size_t>(i)];
  }
}

TEST(MultiwayMergeNetworkTest, MergesAllZeroOneProfiles) {
  expect_merges(2, 2);
  expect_merges(2, 4);
  expect_merges(2, 8);
  expect_merges(3, 3);
  expect_merges(3, 9);
  expect_merges(4, 4);
  expect_merges(4, 16);
  expect_merges(5, 5);
}

TEST(MultiwayMergeNetworkTest, MergesRandomKeys) {
  std::mt19937 rng(3);
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{
           {2, 16}, {3, 27}, {4, 16}, {5, 25}}) {
    const MergeNetwork mn = multiway_merge_network(n, m);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<Key> v(static_cast<std::size_t>(n) * m);
      for (Key& k : v) k = static_cast<Key>(rng() % 1000);
      for (int u = 0; u < n; ++u)
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(u * m),
                  v.begin() + static_cast<std::ptrdiff_t>((u + 1) * m));
      std::vector<Key> expected = v;
      std::sort(expected.begin(), expected.end());
      mn.network.apply(v);
      for (std::size_t j = 0; j < mn.output_order.size(); ++j)
        ASSERT_EQ(v[static_cast<std::size_t>(mn.output_order[j])],
                  expected[j]);
    }
  }
}

TEST(MultiwayMergeNetworkTest, OutputOrderIsAPermutation) {
  const MergeNetwork mn = multiway_merge_network(3, 9);
  std::vector<int> sorted = mn.output_order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expected(sorted.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
}

TEST(MultiwayMergeNetworkTest, RejectsBadShapes) {
  EXPECT_THROW((void)multiway_merge_network(1, 2), std::invalid_argument);
  EXPECT_THROW((void)multiway_merge_network(2, 3), std::invalid_argument);
  EXPECT_THROW((void)multiway_merge_network(3, 1), std::invalid_argument);
  EXPECT_THROW((void)multiway_merge_network(3, 6), std::invalid_argument);
}

// ------------------------------------------------------ sorting networks

class MultiwaySortNetworkTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MultiwaySortNetworkTest, SortsAllZeroOneInputs) {
  const auto [n, r] = GetParam();
  const ComparatorNetwork net = multiway_sort_network(n, r);
  if (net.width() <= 20) {
    EXPECT_TRUE(sorts_all_zero_one(net)) << "N=" << n << " r=" << r;
  } else {
    std::mt19937 rng(static_cast<unsigned>(n * r));
    for (int trial = 0; trial < 300; ++trial) {
      std::vector<Key> v(static_cast<std::size_t>(net.width()));
      for (Key& k : v) k = static_cast<Key>(rng() & 1u);
      net.apply(v);
      ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
    }
  }
}

TEST_P(MultiwaySortNetworkTest, SortsRandomKeys) {
  const auto [n, r] = GetParam();
  const ComparatorNetwork net = multiway_sort_network(n, r);
  std::mt19937 rng(static_cast<unsigned>(n + r));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Key> v(static_cast<std::size_t>(net.width()));
    for (Key& k : v) k = static_cast<Key>(rng() % 500);
    std::vector<Key> expected = v;
    std::sort(expected.begin(), expected.end());
    net.apply(v);
    ASSERT_EQ(v, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiwaySortNetworkTest,
    ::testing::Values(std::pair<int, int>{2, 2}, std::pair<int, int>{2, 3},
                      std::pair<int, int>{2, 4}, std::pair<int, int>{2, 5},
                      std::pair<int, int>{3, 2}, std::pair<int, int>{3, 3},
                      std::pair<int, int>{3, 4}, std::pair<int, int>{4, 2},
                      std::pair<int, int>{4, 3}, std::pair<int, int>{5, 2},
                      std::pair<int, int>{5, 3}, std::pair<int, int>{6, 2}));

TEST(MultiwaySortNetworkTest, BinaryCaseComparesToBatcher) {
  // For N = 2 the construction generalizes Batcher's; same asymptotic
  // depth order O(log^2), within a constant.
  for (int r = 2; r <= 8; ++r) {
    const ComparatorNetwork ours = multiway_sort_network(2, r);
    const ComparatorNetwork batcher = odd_even_merge_sort_network(1 << r);
    EXPECT_LE(ours.depth(), 8 * batcher.depth()) << "r=" << r;
    EXPECT_GE(ours.depth(), batcher.depth()) << "r=" << r;
  }
}

TEST(MultiwaySortNetworkTest, DepthGrowsQuadraticallyInDimensions) {
  // Theorem 1 analog: depth = Theta(r^2) at fixed N.
  const int d3 = multiway_sort_network(3, 3).depth();
  const int d5 = multiway_sort_network(3, 5).depth();
  const int d7 = multiway_sort_network(3, 7).depth();
  // Ratios ~ (r-1)^2: (5-1)^2/(3-1)^2 = 4, (7-1)^2/(3-1)^2 = 9.
  EXPECT_NEAR(static_cast<double>(d5) / d3, 4.0, 1.6);
  EXPECT_NEAR(static_cast<double>(d7) / d3, 9.0, 3.5);
}

TEST(MultiwaySortNetworkTest, RejectsBadArguments) {
  EXPECT_THROW((void)multiway_sort_network(1, 3), std::invalid_argument);
  EXPECT_THROW((void)multiway_sort_network(3, 1), std::invalid_argument);
  EXPECT_THROW((void)multiway_sort_network(2, 30), std::invalid_argument);
}

}  // namespace
}  // namespace prodsort
