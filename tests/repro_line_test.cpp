// Unit coverage for the shared REPRO-line parser (tools/repro_line.hpp)
// that prodsort_stress and prodsort_serve both replay through.

#include "repro_line.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace prodsort {
namespace {

TEST(ReproLine, GetReturnsTokenValues) {
  const ReproLine repro(
      "SDC-REPRO mode=sdc seed=7 trial=12 family=path-3 r=2 "
      "schedule=seed=5,ce=0.002 reason=silent-escape");
  EXPECT_EQ(repro.get("mode"), "sdc");
  EXPECT_EQ(repro.get("seed"), "7");
  EXPECT_EQ(repro.get("family"), "path-3");
  // The value may itself contain '=' (embedded schedule strings).
  EXPECT_EQ(repro.get("schedule"), "seed=5,ce=0.002");
  EXPECT_EQ(repro.get("reason"), "silent-escape");
}

TEST(ReproLine, AbsentKeyIsEmptyAndHasDisambiguates) {
  const ReproLine repro("A-REPRO seed=7 empty= x=1");
  EXPECT_EQ(repro.get("missing"), "");
  EXPECT_FALSE(repro.has("missing"));
  EXPECT_EQ(repro.get("empty"), "");
  EXPECT_TRUE(repro.has("empty"));
}

TEST(ReproLine, FirstOccurrenceWins) {
  const ReproLine repro("seed=1 seed=2");
  EXPECT_EQ(repro.get("seed"), "1");
}

TEST(ReproLine, KeyMatchIsExactNotPrefixOrSuffix) {
  // "r=" must not match inside "retry=3" or "tmr=1", and "retry=" must
  // not match the shorter token "r=2".
  const ReproLine repro("retry=3 tmr=1 r=2");
  EXPECT_EQ(repro.get("r"), "2");
  EXPECT_EQ(repro.get("retry"), "3");
  EXPECT_EQ(repro.get("tmr"), "1");
  EXPECT_FALSE(ReproLine("retry=3").has("r"));
}

TEST(ReproLine, RequireThrowsNamingTheMissingKey) {
  const ReproLine repro("seed=7");
  EXPECT_EQ(repro.require("seed"), "7");
  try {
    (void)repro.require("trial");
    FAIL() << "require() accepted a missing key";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'trial='"), std::string::npos)
        << e.what();
  }
}

TEST(ReproLine, RejoinArgsUndoesShellSplitting) {
  char arg0[] = "prodsort_stress";
  char arg1[] = "--repro";
  char arg2[] = "SDC-REPRO";
  char arg3[] = "seed=7";
  char arg4[] = "trial=3";
  char* argv[] = {arg0, arg1, arg2, arg3, arg4};
  EXPECT_EQ(ReproLine::rejoin_args(5, argv, 2), "SDC-REPRO seed=7 trial=3");
  EXPECT_EQ(ReproLine::rejoin_args(5, argv, 5), "");
}

// The adaptive-certification tokens ride the same parser: cert-level /
// cert-seed on SDC-REPRO lines, sdc-budget / ledger on SERVICE-REPRO
// lines.  They are optional — replay code falls back to defaults when
// has() is false — so both presence and absence must be unambiguous.
TEST(ReproLine, CarriesAdaptiveCertTokens) {
  const ReproLine sdc(
      "SDC-REPRO mode=sdc seed=7 trial=12 family=cycle-4 r=2 "
      "schedule=seed=5,comparators=3@0~4I cert-level=sampled "
      "cert-seed=123456789 rung=resort reason=repaired");
  EXPECT_EQ(sdc.get("cert-level"), "sampled");
  EXPECT_EQ(sdc.get("cert-seed"), "123456789");
  EXPECT_EQ(sdc.get("rung"), "resort");

  const ReproLine serve(
      "SERVICE-REPRO mode=serve seed=9 jobs=40 backends=3 "
      "sdc-budget=0.001 ledger=14467021887457771297 hash=42");
  EXPECT_EQ(serve.get("sdc-budget"), "0.001");
  EXPECT_EQ(serve.get("ledger"), "14467021887457771297");

  // A pre-adaptive line simply lacks the tokens; replay sees has()=false
  // and keeps the feature off — old lines stay replayable.
  const ReproLine legacy("SERVICE-REPRO mode=serve seed=9 hash=42");
  EXPECT_FALSE(legacy.has("sdc-budget"));
  EXPECT_FALSE(legacy.has("ledger"));
  EXPECT_FALSE(legacy.has("cert-level"));
}

TEST(ReproLine, ToleratesRepeatedSpacesAndJunkTokens) {
  const ReproLine repro("  seed=7   junk garbage==x  trial=3 ");
  EXPECT_EQ(repro.get("seed"), "7");
  EXPECT_EQ(repro.get("trial"), "3");
  EXPECT_EQ(repro.get("garbage"), "=x");
  EXPECT_FALSE(repro.has("junk"));
}

}  // namespace
}  // namespace prodsort
