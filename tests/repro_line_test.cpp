// Unit coverage for the shared REPRO-line parser (tools/repro_line.hpp)
// that prodsort_stress, prodsort_serve, and prodsort_stream all replay
// through, plus the typed STREAM-REPRO round trip (tools/stream_repro.hpp).

#include "repro_line.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "stream_repro.hpp"

namespace prodsort {
namespace {

TEST(ReproLine, GetReturnsTokenValues) {
  const ReproLine repro(
      "SDC-REPRO mode=sdc seed=7 trial=12 family=path-3 r=2 "
      "schedule=seed=5,ce=0.002 reason=silent-escape");
  EXPECT_EQ(repro.get("mode"), "sdc");
  EXPECT_EQ(repro.get("seed"), "7");
  EXPECT_EQ(repro.get("family"), "path-3");
  // The value may itself contain '=' (embedded schedule strings).
  EXPECT_EQ(repro.get("schedule"), "seed=5,ce=0.002");
  EXPECT_EQ(repro.get("reason"), "silent-escape");
}

TEST(ReproLine, AbsentKeyIsEmptyAndHasDisambiguates) {
  const ReproLine repro("A-REPRO seed=7 empty= x=1");
  EXPECT_EQ(repro.get("missing"), "");
  EXPECT_FALSE(repro.has("missing"));
  EXPECT_EQ(repro.get("empty"), "");
  EXPECT_TRUE(repro.has("empty"));
}

TEST(ReproLine, FirstOccurrenceWins) {
  const ReproLine repro("seed=1 seed=2");
  EXPECT_EQ(repro.get("seed"), "1");
}

TEST(ReproLine, KeyMatchIsExactNotPrefixOrSuffix) {
  // "r=" must not match inside "retry=3" or "tmr=1", and "retry=" must
  // not match the shorter token "r=2".
  const ReproLine repro("retry=3 tmr=1 r=2");
  EXPECT_EQ(repro.get("r"), "2");
  EXPECT_EQ(repro.get("retry"), "3");
  EXPECT_EQ(repro.get("tmr"), "1");
  EXPECT_FALSE(ReproLine("retry=3").has("r"));
}

TEST(ReproLine, RequireThrowsNamingTheMissingKey) {
  const ReproLine repro("seed=7");
  EXPECT_EQ(repro.require("seed"), "7");
  try {
    (void)repro.require("trial");
    FAIL() << "require() accepted a missing key";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'trial='"), std::string::npos)
        << e.what();
  }
}

TEST(ReproLine, RejoinArgsUndoesShellSplitting) {
  char arg0[] = "prodsort_stress";
  char arg1[] = "--repro";
  char arg2[] = "SDC-REPRO";
  char arg3[] = "seed=7";
  char arg4[] = "trial=3";
  char* argv[] = {arg0, arg1, arg2, arg3, arg4};
  EXPECT_EQ(ReproLine::rejoin_args(5, argv, 2), "SDC-REPRO seed=7 trial=3");
  EXPECT_EQ(ReproLine::rejoin_args(5, argv, 5), "");
}

// The adaptive-certification tokens ride the same parser: cert-level /
// cert-seed on SDC-REPRO lines, sdc-budget / ledger on SERVICE-REPRO
// lines.  They are optional — replay code falls back to defaults when
// has() is false — so both presence and absence must be unambiguous.
TEST(ReproLine, CarriesAdaptiveCertTokens) {
  const ReproLine sdc(
      "SDC-REPRO mode=sdc seed=7 trial=12 family=cycle-4 r=2 "
      "schedule=seed=5,comparators=3@0~4I cert-level=sampled "
      "cert-seed=123456789 rung=resort reason=repaired");
  EXPECT_EQ(sdc.get("cert-level"), "sampled");
  EXPECT_EQ(sdc.get("cert-seed"), "123456789");
  EXPECT_EQ(sdc.get("rung"), "resort");

  const ReproLine serve(
      "SERVICE-REPRO mode=serve seed=9 jobs=40 backends=3 "
      "sdc-budget=0.001 ledger=14467021887457771297 hash=42");
  EXPECT_EQ(serve.get("sdc-budget"), "0.001");
  EXPECT_EQ(serve.get("ledger"), "14467021887457771297");

  // A pre-adaptive line simply lacks the tokens; replay sees has()=false
  // and keeps the feature off — old lines stay replayable.
  const ReproLine legacy("SERVICE-REPRO mode=serve seed=9 hash=42");
  EXPECT_FALSE(legacy.has("sdc-budget"));
  EXPECT_FALSE(legacy.has("ledger"));
  EXPECT_FALSE(legacy.has("cert-level"));
}

TEST(ReproLine, ToleratesRepeatedSpacesAndJunkTokens) {
  const ReproLine repro("  seed=7   junk garbage==x  trial=3 ");
  EXPECT_EQ(repro.get("seed"), "7");
  EXPECT_EQ(repro.get("trial"), "3");
  EXPECT_EQ(repro.get("garbage"), "=x");
  EXPECT_FALSE(repro.has("junk"));
}

// --- STREAM-REPRO (tools/stream_repro.hpp) ------------------------------

StreamRepro sample_stream_repro() {
  StreamRepro r;
  r.config.seed = 0xDEADBEEFu;
  r.config.batches = 23;
  r.config.batch_keys = 771;
  r.config.pattern = 3;
  r.config.batch_interval = 96;
  r.config.ranges = 5;
  r.config.sample_keys = 129;
  r.config.block = 16;
  r.config.budget_bytes = 99991;
  r.config.backends = 6;
  r.config.domains = 3;
  r.config.faulty = 2;
  r.config.outage = "0@300~500+2@800~900+0@1000~1100";
  r.config.tear_rate = 0.125;
  r.config.crash_rate = 0.01;
  r.config.retry_limit = 5;
  r.config.backoff_base = 4;
  r.config.backoff_cap = 128;
  r.config.breaker = {.failure_threshold = 2, .cooldown = 333};
  r.size = 5;
  r.dims = 3;
  r.threads = 4;
  r.chain = 12345678901234567890ull;
  r.hash = 9876543210123456789ull;
  return r;
}

TEST(StreamRepro, FormatParseRoundTripsEveryField) {
  const StreamRepro r = sample_stream_repro();
  const StreamRepro p = parse_stream_repro(format_stream_repro(r));
  EXPECT_EQ(p.config.seed, r.config.seed);
  EXPECT_EQ(p.config.batches, r.config.batches);
  EXPECT_EQ(p.config.batch_keys, r.config.batch_keys);
  EXPECT_EQ(p.config.pattern, r.config.pattern);
  EXPECT_EQ(p.config.batch_interval, r.config.batch_interval);
  EXPECT_EQ(p.config.ranges, r.config.ranges);
  EXPECT_EQ(p.config.sample_keys, r.config.sample_keys);
  EXPECT_EQ(p.config.block, r.config.block);
  EXPECT_EQ(p.config.budget_bytes, r.config.budget_bytes);
  EXPECT_EQ(p.config.backends, r.config.backends);
  EXPECT_EQ(p.config.domains, r.config.domains);
  EXPECT_EQ(p.config.faulty, r.config.faulty);
  EXPECT_EQ(p.config.outage, r.config.outage);
  EXPECT_EQ(p.config.tear_rate, r.config.tear_rate)
      << "rates print at %.17g so the double round-trips bit-identically";
  EXPECT_EQ(p.config.crash_rate, r.config.crash_rate);
  EXPECT_EQ(p.config.retry_limit, r.config.retry_limit);
  EXPECT_EQ(p.config.backoff_base, r.config.backoff_base);
  EXPECT_EQ(p.config.backoff_cap, r.config.backoff_cap);
  EXPECT_EQ(p.config.breaker.failure_threshold,
            r.config.breaker.failure_threshold);
  EXPECT_EQ(p.config.breaker.cooldown, r.config.breaker.cooldown);
  EXPECT_EQ(p.size, r.size);
  EXPECT_EQ(p.dims, r.dims);
  EXPECT_EQ(p.threads, r.threads);
  EXPECT_EQ(p.chain, r.chain);
  EXPECT_EQ(p.hash, r.hash);
}

TEST(StreamRepro, EmptyOutageIsOmittedAndParsesBack) {
  StreamRepro r = sample_stream_repro();
  r.config.outage.clear();
  const std::string line = format_stream_repro(r);
  EXPECT_EQ(line.find("outage="), std::string::npos);
  EXPECT_TRUE(parse_stream_repro(line).config.outage.empty());
}

TEST(StreamRepro, MissingRequiredTokenNamesTheKey) {
  try {
    (void)parse_stream_repro("STREAM-REPRO seed=7 batches=3");
    FAIL() << "accepted a line with most tokens missing";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("batch="), std::string::npos)
        << "error must name the first missing token: " << e.what();
  }
}

TEST(StreamRepro, MalformedTokensAreRejectedByName) {
  const std::string good = format_stream_repro(sample_stream_repro());
  const struct {
    const char* from;
    const char* to;
    const char* named;
  } kMutations[] = {
      {"batches=23", "batches=twenty", "batches="},
      {"budget=99991", "budget=99991x", "budget="},
      {"tear=0.125", "tear=0.1x25", "tear="},
      {"chain=12345678901234567890", "chain=0x12", "chain="},
      {"outage=0@300~500+2@800~900+0@1000~1100", "outage=9@1~2",
       "outage token"},
  };
  for (const auto& m : kMutations) {
    std::string line = good;
    const std::size_t pos = line.find(m.from);
    ASSERT_NE(pos, std::string::npos) << m.from;
    line.replace(pos, std::string(m.from).size(), m.to);
    try {
      (void)parse_stream_repro(line);
      FAIL() << "accepted malformed token: " << m.to;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(m.named), std::string::npos)
          << "error for '" << m.to << "' must name '" << m.named
          << "', got: " << e.what();
    }
  }
}

TEST(StreamRepro, UnknownTokensAreIgnoredForForwardCompatibility) {
  const std::string line =
      format_stream_repro(sample_stream_repro()) + " future-flag=1 note=x";
  EXPECT_EQ(parse_stream_repro(line).config.batches, 23);
}

}  // namespace
}  // namespace prodsort
