// Mutation tests for the end-to-end sort certificate.
//
// A certificate that only catches obvious corruption is worse than
// none — it licenses skipping the full check.  These tests feed the
// Certifier the adversarial almost-sorted arrays a silent comparator
// fault actually produces: a single swapped adjacent pair, a
// duplicated key standing in for a lost one (sorted order intact —
// only the fingerprint can object), and off-by-one damage at every
// snake boundary.  They also pin the equivalence the repair ladder
// depends on: fingerprint_sequence() computes exactly
// multiset_checksum(), serially and in parallel.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "core/certifier.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/verify.hpp"
#include "graph/labeled_factor.hpp"
#include "network/parallel_executor.hpp"
#include "product/snake_order.hpp"
#include "product/subgraph_view.hpp"

namespace prodsort {
namespace {

std::vector<Key> iota_keys(int n) {
  std::vector<Key> keys(static_cast<std::size_t>(n));
  std::iota(keys.begin(), keys.end(), Key{0});
  return keys;
}

TEST(Certifier, FingerprintEqualsMultisetChecksum) {
  std::mt19937_64 rng(11);
  ParallelExecutor exec(4);
  for (const int n : {0, 1, 2, 17, 256, 4097}) {
    std::vector<Key> keys(static_cast<std::size_t>(n));
    for (Key& k : keys) k = static_cast<Key>(rng() % 97);
    const MultisetFingerprint serial = fingerprint_sequence(keys);
    const MultisetFingerprint parallel = fingerprint_sequence(keys, &exec);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial.checksum, multiset_checksum(keys));
    EXPECT_EQ(serial.count, static_cast<std::uint64_t>(n));
  }
}

TEST(Certifier, PassesSortedPermutations) {
  const std::vector<Key> input = {5, 1, 4, 1, 5, 9, 2, 6};
  const Certifier certifier(input);
  std::vector<Key> sorted = input;
  std::sort(sorted.begin(), sorted.end());
  const EndToEndCertificate cert = certifier.certify(sorted);
  EXPECT_TRUE(cert.pass());
  EXPECT_TRUE(cert.sorted);
  EXPECT_EQ(cert.adjacency_violations, 0);
  EXPECT_EQ(cert.expected, cert.observed);
}

TEST(Certifier, PassesEmptyAndSingleton) {
  const std::vector<Key> empty;
  EXPECT_TRUE(Certifier(empty).certify(empty).pass());
  const std::vector<Key> one = {42};
  EXPECT_TRUE(Certifier(one).certify(one).pass());
}

// Every single swapped adjacent pair of distinct keys must be caught
// as wrong order, with the dirty window covering the swap.
TEST(Certifier, RejectsEverySwappedAdjacentPair) {
  const int n = 64;
  const std::vector<Key> sorted = iota_keys(n);
  const Certifier certifier(sorted);
  for (int i = 0; i + 1 < n; ++i) {
    std::vector<Key> seq = sorted;
    std::swap(seq[static_cast<std::size_t>(i)],
              seq[static_cast<std::size_t>(i) + 1]);
    const EndToEndCertificate cert = certifier.certify(seq);
    ASSERT_EQ(cert.verdict, CertVerdict::kWrongOrder) << "swap at " << i;
    EXPECT_FALSE(cert.sorted);
    EXPECT_EQ(cert.first_violation, i);
    EXPECT_LE(cert.dirty_lo, i);
    EXPECT_GE(cert.dirty_hi, i + 1);
  }
}

// A duplicated key replacing a lost one keeps the sequence sorted —
// the adversarial case only the multiset fingerprint can reject.
TEST(Certifier, RejectsDuplicatedKeyReplacingLostOne) {
  const int n = 64;
  const std::vector<Key> sorted = iota_keys(n);
  const Certifier certifier(sorted);
  for (int i = 0; i + 1 < n; ++i) {
    std::vector<Key> seq = sorted;
    seq[static_cast<std::size_t>(i)] = seq[static_cast<std::size_t>(i) + 1];
    const EndToEndCertificate cert = certifier.certify(seq);
    ASSERT_EQ(cert.verdict, CertVerdict::kKeysCorrupted) << "dup at " << i;
    EXPECT_TRUE(cert.sorted);  // order is fine; the *keys* are wrong
    EXPECT_NE(cert.observed.checksum, cert.expected.checksum);
  }
}

// Fingerprint mismatch outranks wrong order: when keys are corrupted
// AND misordered, the verdict must steer recovery away from futile
// in-place repair.
TEST(Certifier, KeysCorruptedOutranksWrongOrder) {
  const std::vector<Key> input = iota_keys(16);
  const Certifier certifier(input);
  std::vector<Key> seq = input;
  seq[3] = 999;  // corrupt a key...
  std::swap(seq[8], seq[9]);  // ...and break the order elsewhere
  EXPECT_EQ(certifier.certify(seq).verdict, CertVerdict::kKeysCorrupted);
}

// Off-by-one damage at every snake boundary of a product machine, both
// flavors: a boundary-crossing swap (wrong order) and a +-1 key edit
// (corrupted multiset) — the ranks where shearsort/snake-OET hand off
// between rows and historical off-by-one bugs like to live.
TEST(Certifier, RejectsOffByOneAtEverySnakeBoundary) {
  const ProductGraph pg(labeled_path(4), 2);  // 16 nodes, rows of 4
  const PNode n = pg.num_nodes();
  const std::vector<Key> sorted = iota_keys(static_cast<int>(n));
  const Certifier certifier(sorted);
  const ViewSpec view = full_view(pg);

  for (PNode boundary = 4; boundary < n; boundary += 4) {
    // Boundary-crossing swap: last key of one row / first of the next.
    std::vector<Key> keys(static_cast<std::size_t>(n));
    for (PNode rank = 0; rank < n; ++rank)
      keys[static_cast<std::size_t>(node_at_snake_rank(pg, rank))] =
          sorted[static_cast<std::size_t>(rank)];
    std::swap(keys[static_cast<std::size_t>(node_at_snake_rank(
                  pg, boundary - 1))],
              keys[static_cast<std::size_t>(node_at_snake_rank(pg, boundary))]);
    Machine machine(pg, keys);
    const EndToEndCertificate cert = certifier.certify(machine, view);
    ASSERT_EQ(cert.verdict, CertVerdict::kWrongOrder)
        << "boundary " << boundary;
    EXPECT_EQ(cert.first_violation, boundary - 1);

    // Off-by-one key edit at the boundary: still sorted (non-strict),
    // but the multiset lost one key and duplicated another.
    std::vector<Key> edited = sorted;
    edited[static_cast<std::size_t>(boundary)] -= 1;
    const EndToEndCertificate edit_cert = certifier.certify(edited);
    ASSERT_EQ(edit_cert.verdict, CertVerdict::kKeysCorrupted)
        << "boundary " << boundary;
  }
}

TEST(CertifyAndRepair, PassesOnEntryWithoutSpendingPasses) {
  const ProductGraph pg(labeled_path(4), 2);
  const PNode n = pg.num_nodes();
  std::vector<Key> keys(static_cast<std::size_t>(n));
  for (PNode rank = 0; rank < n; ++rank)
    keys[static_cast<std::size_t>(node_at_snake_rank(pg, rank))] =
        static_cast<Key>(rank);
  Machine machine(pg, keys);
  const Certifier certifier(keys);
  const RepairReport report =
      certify_and_repair(machine, full_view(pg), certifier);
  EXPECT_EQ(report.outcome, RepairOutcome::kCertified);
  EXPECT_EQ(report.passes, 0);
  EXPECT_EQ(machine.cost().repair_passes, 0);
}

TEST(CertifyAndRepair, RepairsShuffledWindowWithinBudget) {
  const ProductGraph pg(labeled_path(4), 2);
  const PNode n = pg.num_nodes();
  std::vector<Key> snake = iota_keys(static_cast<int>(n));
  std::reverse(snake.begin() + 5, snake.begin() + 10);  // dirty window [5,9]
  std::vector<Key> keys(static_cast<std::size_t>(n));
  for (PNode rank = 0; rank < n; ++rank)
    keys[static_cast<std::size_t>(node_at_snake_rank(pg, rank))] =
        snake[static_cast<std::size_t>(rank)];
  Machine machine(pg, keys);
  const Certifier certifier(snake);

  const RepairReport report =
      certify_and_repair(machine, full_view(pg), certifier);
  EXPECT_EQ(report.outcome, RepairOutcome::kRepaired);
  EXPECT_EQ(report.before.verdict, CertVerdict::kWrongOrder);
  EXPECT_TRUE(report.after.pass());
  // A dirty window of width w sorts in at most w alternating passes.
  EXPECT_GT(report.passes, 0);
  EXPECT_LE(report.passes, 7);
  EXPECT_GT(report.repair_steps, 0);
  EXPECT_EQ(machine.cost().repair_passes, report.passes);
  EXPECT_EQ(machine.read_snake(full_view(pg)), iota_keys(static_cast<int>(n)));
}

TEST(CertifyAndRepair, RefusesCorruptedKeys) {
  const ProductGraph pg(labeled_path(4), 2);
  const PNode n = pg.num_nodes();
  std::vector<Key> keys(static_cast<std::size_t>(n), Key{7});  // all equal
  Machine machine(pg, keys);
  std::vector<Key> other = keys;
  other[0] = 8;  // expected multiset differs from the machine's
  const Certifier certifier(other);
  const RepairReport report =
      certify_and_repair(machine, full_view(pg), certifier);
  EXPECT_EQ(report.outcome, RepairOutcome::kKeysCorrupted);
  EXPECT_EQ(report.passes, 0);
}

TEST(CertifyAndRepair, ReportsBudgetExhaustion) {
  const ProductGraph pg(labeled_path(4), 2);
  const PNode n = pg.num_nodes();
  std::vector<Key> snake = iota_keys(static_cast<int>(n));
  std::reverse(snake.begin(), snake.end());  // maximally dirty
  std::vector<Key> keys(static_cast<std::size_t>(n));
  for (PNode rank = 0; rank < n; ++rank)
    keys[static_cast<std::size_t>(node_at_snake_rank(pg, rank))] =
        snake[static_cast<std::size_t>(rank)];
  Machine machine(pg, keys);
  const Certifier certifier(snake);
  RepairOptions options;
  options.max_passes = 1;
  const RepairReport report =
      certify_and_repair(machine, full_view(pg), certifier, options);
  EXPECT_EQ(report.outcome, RepairOutcome::kBudgetExhausted);
  EXPECT_EQ(report.passes, 1);
  EXPECT_FALSE(report.after.pass());
}

}  // namespace
}  // namespace prodsort
