#include "core/multiway_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "product/gray_code.hpp"

namespace prodsort {
namespace {

std::vector<std::vector<Key>> random_sorted_inputs(std::int64_t n,
                                                   std::int64_t m,
                                                   std::mt19937& rng,
                                                   int key_range = 1000) {
  std::vector<std::vector<Key>> inputs(static_cast<std::size_t>(n));
  std::uniform_int_distribution<Key> dist(0, key_range);
  for (auto& seq : inputs) {
    seq.resize(static_cast<std::size_t>(m));
    for (Key& k : seq) k = dist(rng);
    std::sort(seq.begin(), seq.end());
  }
  return inputs;
}

std::vector<Key> flatten_sorted(const std::vector<std::vector<Key>>& inputs) {
  std::vector<Key> all;
  for (const auto& seq : inputs) all.insert(all.end(), seq.begin(), seq.end());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(MultiwayMergeTest, PaperStep1Example) {
  // Section 3.1 example: A_u = {1..9}, N = 3 ->
  // B_{u,0} = {1,6,7}, B_{u,1} = {2,5,8}, B_{u,2} = {3,4,9}.
  // Exercised indirectly: merging three copies of {1..9} must interleave
  // them; the Step-1 split is internal, so we verify the merge result.
  const std::vector<std::vector<Key>> inputs = {
      {1, 2, 3, 4, 5, 6, 7, 8, 9},
      {1, 2, 3, 4, 5, 6, 7, 8, 9},
      {1, 2, 3, 4, 5, 6, 7, 8, 9}};
  const auto out = multiway_merge(inputs);
  EXPECT_EQ(out, flatten_sorted(inputs));
}

TEST(MultiwayMergeTest, PaperRunningExampleFig12) {
  // The exact sequences of Fig. 12 (N = 3, 27 keys).
  const std::vector<std::vector<Key>> inputs = {
      {0, 4, 4, 5, 5, 7, 8, 8, 9},
      {1, 4, 5, 5, 5, 6, 7, 7, 8},
      {0, 0, 1, 1, 1, 2, 3, 4, 9}};
  const auto out = multiway_merge(inputs);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out, flatten_sorted(inputs));
}

TEST(MultiwayMergeTest, RejectsBadInput) {
  EXPECT_THROW((void)multiway_merge({{1, 2}}), std::invalid_argument);
  EXPECT_THROW((void)multiway_merge({{1, 2, 3}, {1, 2, 3}}),
               std::invalid_argument);  // length 3 not power of 2
  EXPECT_THROW((void)multiway_merge({{1, 2}, {1, 2, 3}}),
               std::invalid_argument);  // ragged
  EXPECT_THROW((void)multiway_merge({{2, 1}, {1, 2}}),
               std::invalid_argument);  // unsorted
  EXPECT_THROW((void)multiway_merge({{1}, {2}}),
               std::invalid_argument);  // m < N
}

class MultiwayMergeParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // (N, k)

TEST_P(MultiwayMergeParamTest, MergesRandomInputs) {
  const auto [n, k] = GetParam();
  const std::int64_t m = pow_int(n, k - 1);
  std::mt19937 rng(static_cast<unsigned>(n * 100 + k));
  for (int trial = 0; trial < 20; ++trial) {
    const auto inputs = random_sorted_inputs(n, m, rng);
    MergeStats stats;
    const auto out = multiway_merge(inputs, &stats);
    EXPECT_EQ(out, flatten_sorted(inputs));
    EXPECT_GE(stats.merges, 1);
  }
}

TEST_P(MultiwayMergeParamTest, MergesDuplicateHeavyInputs) {
  const auto [n, k] = GetParam();
  const std::int64_t m = pow_int(n, k - 1);
  std::mt19937 rng(static_cast<unsigned>(n * 1000 + k));
  for (int trial = 0; trial < 10; ++trial) {
    const auto inputs = random_sorted_inputs(n, m, rng, 2);  // keys in {0,1,2}
    const auto out = multiway_merge(inputs);
    EXPECT_EQ(out, flatten_sorted(inputs));
  }
}

TEST_P(MultiwayMergeParamTest, ExhaustiveZeroOne) {
  // Every 0-1 input = a choice of zero-count per sorted sequence, so
  // (m+1)^N cases cover the merge exhaustively (zero-one principle).
  const auto [n, k] = GetParam();
  const std::int64_t m = pow_int(n, k - 1);
  const double cases = std::pow(static_cast<double>(m + 1), n);
  if (cases > 250000) GTEST_SKIP() << "too many zero-one cases";
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(n), 0);
  for (;;) {
    std::vector<std::vector<Key>> inputs(static_cast<std::size_t>(n));
    for (std::int64_t u = 0; u < n; ++u) {
      auto& seq = inputs[static_cast<std::size_t>(u)];
      seq.assign(static_cast<std::size_t>(m), 1);
      std::fill_n(seq.begin(), zeros[static_cast<std::size_t>(u)], 0);
    }
    MergeStats stats;
    const auto out = multiway_merge(inputs, &stats);
    ASSERT_TRUE(std::is_sorted(out.begin(), out.end()))
        << "zeros profile failed";
    ASSERT_LE(stats.max_dirty_span, static_cast<std::int64_t>(n) * n)
        << "Lemma 1 violated";
    // Next zero-count profile.
    std::int64_t i = 0;
    while (i < n && zeros[static_cast<std::size_t>(i)] == m) {
      zeros[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) break;
    ++zeros[static_cast<std::size_t>(i)];
  }
}

TEST_P(MultiwayMergeParamTest, DirtyWindowBoundOnRandomZeroOneInputs) {
  // Lemma 1 as observed: for 0-1 inputs the dirty window after Step 3
  // never exceeds N^2 (random zero-count profiles, complementing the
  // exhaustive sweep on the smaller configurations).
  const auto [n, k] = GetParam();
  const std::int64_t m = pow_int(n, k - 1);
  std::mt19937 rng(static_cast<unsigned>(n * 7 + k));
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::vector<Key>> inputs(static_cast<std::size_t>(n));
    for (auto& seq : inputs) {
      seq.assign(static_cast<std::size_t>(m), 1);
      std::fill_n(seq.begin(), rng() % static_cast<unsigned>(m + 1), 0);
    }
    MergeStats stats;
    const auto out = multiway_merge(inputs, &stats);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_LE(stats.max_dirty_span, static_cast<std::int64_t>(n) * n);
  }
}

TEST_P(MultiwayMergeParamTest, DisplacementBoundOnRandomInputs) {
  // Section 4, Step 3 remark: after interleaving, every key is within
  // N^2 of its final position — for arbitrary keys.
  const auto [n, k] = GetParam();
  const std::int64_t m = pow_int(n, k - 1);
  std::mt19937 rng(static_cast<unsigned>(n * 13 + k));
  for (int trial = 0; trial < 20; ++trial) {
    const auto inputs = random_sorted_inputs(n, m, rng);
    MergeStats stats;
    (void)multiway_merge(inputs, &stats);
    EXPECT_LE(stats.max_displacement, static_cast<std::int64_t>(n) * n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiwayMergeParamTest,
    ::testing::Values(std::pair<int, int>{2, 2}, std::pair<int, int>{2, 3},
                      std::pair<int, int>{2, 5}, std::pair<int, int>{3, 2},
                      std::pair<int, int>{3, 3}, std::pair<int, int>{3, 4},
                      std::pair<int, int>{4, 3}, std::pair<int, int>{5, 3},
                      std::pair<int, int>{7, 2}));

TEST(MultiwayMergeTest, StatsCountBaseSorts) {
  // Merging N sequences of N keys is one direct sort.
  MergeStats stats;
  (void)multiway_merge({{0, 1}, {2, 3}}, &stats);
  EXPECT_EQ(stats.merges, 1);
  EXPECT_EQ(stats.base_sorts, 1);
  EXPECT_EQ(stats.transpositions, 0);
}

TEST(MultiwayMergeTest, StatsCountRecursion) {
  // N = 2, m = 4: one top merge + two column merges (base sorts).
  MergeStats stats;
  (void)multiway_merge({{0, 1, 2, 3}, {4, 5, 6, 7}}, &stats);
  EXPECT_EQ(stats.merges, 3);
  EXPECT_EQ(stats.base_sorts, 2);
  EXPECT_EQ(stats.transpositions, 2);  // only the top level cleans
}

TEST(DirtySpanTest, Basics) {
  EXPECT_EQ(dirty_span({1, 2, 3}), 0);
  EXPECT_EQ(dirty_span({2, 1, 3}), 2);
  EXPECT_EQ(dirty_span({3, 2, 1}), 3);
  EXPECT_EQ(dirty_span({1, 3, 2, 4}), 2);
  EXPECT_EQ(dirty_span({}), 0);
}

}  // namespace
}  // namespace prodsort
