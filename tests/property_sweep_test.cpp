// Cross-cutting property sweeps: differential testing of every sorter
// combination against std::sort and against each other, invariants that
// must hold across the whole configuration space, and failure-injection
// checks that the validation machinery actually catches corruption.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>

#include "core/block_sort.hpp"
#include "core/product_sort.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "core/sequence_sort.hpp"
#include "product/snake_order.hpp"

namespace prodsort {
namespace {

std::vector<Key> pattern_keys(PNode total, int pattern, std::mt19937_64& rng) {
  std::vector<Key> keys(static_cast<std::size_t>(total));
  switch (pattern) {
    case 0:  // uniform random
      for (Key& k : keys) k = static_cast<Key>(rng() % 1000003);
      break;
    case 1:  // reverse sorted
      for (PNode i = 0; i < total; ++i)
        keys[static_cast<std::size_t>(i)] = total - i;
      break;
    case 2:  // few distinct values
      for (Key& k : keys) k = static_cast<Key>(rng() % 3);
      break;
    case 3:  // organ pipe
      for (PNode i = 0; i < total; ++i)
        keys[static_cast<std::size_t>(i)] = std::min(i, total - 1 - i);
      break;
    case 4:  // already sorted
      for (PNode i = 0; i < total; ++i)
        keys[static_cast<std::size_t>(i)] = i;
      break;
    case 5:  // extremes: min/max of the key domain interleaved
      for (PNode i = 0; i < total; ++i)
        keys[static_cast<std::size_t>(i)] =
            (i % 2 == 0) ? std::numeric_limits<Key>::min()
                         : std::numeric_limits<Key>::max();
      break;
    default:  // random with negatives
      for (Key& k : keys)
        k = static_cast<Key>(rng() % 2001) - 1000;
      break;
  }
  return keys;
}

struct SweepConfig {
  std::size_t factor_index;
  int r;
};

class DifferentialSweepTest : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(DifferentialSweepTest, EverySorterEveryPatternAgreesWithStdSort) {
  const LabeledFactor f = standard_factors()[GetParam().factor_index];
  const ProductGraph pg(f, GetParam().r);
  if (pg.num_nodes() > 1500) GTEST_SKIP() << "sweep capped for time";
  std::mt19937_64 rng(f.size() * 100u + static_cast<unsigned>(GetParam().r));

  const OracleS2 oracle;
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&oracle, &shear, &oet};

  for (int pattern = 0; pattern < 7; ++pattern) {
    const auto keys = pattern_keys(pg.num_nodes(), pattern, rng);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());
    for (const S2Sorter* s2 : sorters) {
      Machine m(pg, keys);
      SortOptions options;
      options.s2 = s2;
      (void)sort_product_network(m, options);
      ASSERT_EQ(m.read_snake(full_view(pg)), expected)
          << f.name << " r=" << GetParam().r << " pattern=" << pattern
          << " sorter=" << s2->name();
    }
  }
}

TEST_P(DifferentialSweepTest, BlockModeAgreesWithUnitMode) {
  const LabeledFactor f = standard_factors()[GetParam().factor_index];
  const ProductGraph pg(f, GetParam().r);
  if (pg.num_nodes() > 1500) GTEST_SKIP() << "sweep capped for time";
  std::mt19937_64 rng(f.size() * 7u + static_cast<unsigned>(GetParam().r));

  for (const int b : {2, 5}) {
    const auto keys = pattern_keys(pg.num_nodes() * b, 0, rng);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());
    BlockMachine m(pg, keys, b);
    (void)sort_block_network(m);
    ASSERT_EQ(m.read_snake(full_view(pg)), expected)
        << f.name << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFactors, DifferentialSweepTest,
    ::testing::Values(SweepConfig{0, 4}, SweepConfig{1, 3}, SweepConfig{2, 3},
                      SweepConfig{3, 2}, SweepConfig{4, 2}, SweepConfig{5, 3},
                      SweepConfig{6, 3}, SweepConfig{7, 2}, SweepConfig{8, 2},
                      SweepConfig{9, 2}, SweepConfig{10, 3},
                      SweepConfig{11, 2}, SweepConfig{12, 2},
                      SweepConfig{13, 3}, SweepConfig{14, 2},
                      SweepConfig{15, 2}));

TEST(DifferentialSweepTest, RandomConnectedCustomFactorsSort) {
  // The paper's universality claim at its strongest: ANY connected graph
  // works as a factor.  Random trees plus random extra edges, wrapped by
  // labeled_custom, sorted on PG_2 and PG_3.
  std::mt19937 rng(2024);
  for (int trial = 0; trial < 15; ++trial) {
    const NodeId n = 3 + static_cast<NodeId>(rng() % 8);
    Graph g(n);
    for (NodeId v = 1; v < n; ++v)
      g.add_edge(v, static_cast<NodeId>(rng() % static_cast<unsigned>(v)));
    for (int extra = static_cast<int>(rng() % 4); extra > 0; --extra) {
      const NodeId a = static_cast<NodeId>(rng() % static_cast<unsigned>(n));
      const NodeId b = static_cast<NodeId>(rng() % static_cast<unsigned>(n));
      if (a != b && !g.has_edge(a, b)) g.add_edge(a, b);
    }
    const LabeledFactor f =
        labeled_custom(std::move(g), "random-" + std::to_string(trial));
    for (const int r : {2, 3}) {
      const ProductGraph pg(f, r);
      if (pg.num_nodes() > 2000) continue;
      std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
      for (Key& k : keys) k = static_cast<Key>(rng() % 1000);
      std::vector<Key> expected = keys;
      std::sort(expected.begin(), expected.end());
      Machine m(pg, std::move(keys));
      (void)sort_product_network(m);
      ASSERT_EQ(m.read_snake(full_view(pg)), expected)
          << f.name << " r=" << r;
    }
  }
}

// ---------------------------------------------------- failure injection

TEST(FailureInjectionTest, ValidateLevelsCatchesABrokenS2Sorter) {
  // An S2 "sorter" that deliberately leaves one view unsorted must trip
  // the per-level validation.
  class BrokenS2 final : public S2Sorter {
   public:
    [[nodiscard]] std::string name() const override { return "broken"; }
    void sort_views(Machine& machine, std::span<const ViewSpec> views,
                    const std::vector<bool>& descending) const override {
      good_.sort_views(machine, views, descending);
      // Corrupt the first view's first two snake positions.
      const ProductGraph& pg = machine.graph();
      const PNode a = view_node_at_snake_rank(pg, views[0], 0);
      const PNode b = view_node_at_snake_rank(pg, views[0], 1);
      std::swap(machine.mutable_keys()[static_cast<std::size_t>(a)],
                machine.mutable_keys()[static_cast<std::size_t>(b)]);
      machine.mutable_keys()[static_cast<std::size_t>(a)] += 1000;
    }

   private:
    OracleS2 good_;
  };

  const ProductGraph pg(labeled_path(3), 3);
  std::vector<Key> keys(27);
  std::mt19937 rng(5);
  for (Key& k : keys) k = static_cast<Key>(rng() % 100);
  Machine m(pg, std::move(keys));
  const BrokenS2 broken;
  SortOptions options;
  options.s2 = &broken;
  options.validate_levels = true;
  EXPECT_THROW((void)sort_product_network(m, options), std::logic_error);
}

TEST(FailureInjectionTest, SkippingATranspositionBreaksSorting) {
  // Run the schedule by hand but omit the transposition phases: the
  // dirty window must survive on some input, proving the phases are
  // load-bearing (not just charged).
  const ProductGraph pg(labeled_path(3), 3);
  const OracleS2 oracle;
  bool any_failure = false;
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200 && !any_failure; ++trial) {
    std::vector<Key> keys(27);
    for (Key& k : keys) k = static_cast<Key>(rng() & 1u);
    Machine m(pg, std::move(keys));
    // Initial PG_2 sorts.
    const auto views12 = all_views(pg, 1, 2);
    oracle.sort_views(m, views12, std::vector<bool>(views12.size(), false));
    // Merge level 3, but with Step 4's transpositions dropped.
    const auto views23 = all_views(pg, 2, 3);
    oracle.sort_views(m, views23, std::vector<bool>(views23.size(), false));
    const auto blocks = all_views(pg, 1, 2);
    const auto dirs = block_directions(pg, blocks, 1, 3);
    oracle.sort_views(m, blocks, dirs);
    oracle.sort_views(m, blocks, dirs);
    if (!m.snake_sorted(full_view(pg))) any_failure = true;
  }
  EXPECT_TRUE(any_failure)
      << "dropping the transposition steps never failed - suspicious";
}

TEST(FailureInjectionTest, WrongBlockDirectionsBreakSorting) {
  // Sorting Step 4's blocks all-ascending (ignoring group parity) must
  // fail on some input: the alternation is essential for the cleanup.
  const ProductGraph pg(labeled_path(3), 3);
  const OracleS2 oracle;
  bool any_failure = false;
  std::mt19937 rng(9);
  for (int trial = 0; trial < 200 && !any_failure; ++trial) {
    std::vector<Key> keys(27);
    for (Key& k : keys) k = static_cast<Key>(rng() & 1u);
    Machine m(pg, std::move(keys));
    const auto views12 = all_views(pg, 1, 2);
    oracle.sort_views(m, views12, std::vector<bool>(views12.size(), false));
    const auto views23 = all_views(pg, 2, 3);
    oracle.sort_views(m, views23, std::vector<bool>(views23.size(), false));
    const auto blocks = all_views(pg, 1, 2);
    const std::vector<bool> wrong(blocks.size(), false);  // no alternation
    oracle.sort_views(m, blocks, wrong);
    m.compare_exchange_step(transposition_pairs(pg, 1, 3, 0), 1);
    m.compare_exchange_step(transposition_pairs(pg, 1, 3, 1), 1);
    oracle.sort_views(m, blocks, wrong);
    if (!m.snake_sorted(full_view(pg))) any_failure = true;
  }
  EXPECT_TRUE(any_failure)
      << "ignoring block directions never failed - suspicious";
}

// -------------------------------------------------------- invariants

TEST(InvariantTest, SortIsIdempotentEverywhere) {
  std::mt19937_64 rng(11);
  for (const SweepConfig& cfg :
       {SweepConfig{1, 3}, SweepConfig{9, 2}, SweepConfig{11, 2}}) {
    const LabeledFactor f = standard_factors()[cfg.factor_index];
    const ProductGraph pg(f, cfg.r);
    auto keys = pattern_keys(pg.num_nodes(), 0, rng);
    Machine m(pg, std::move(keys));
    (void)sort_product_network(m);
    const std::vector<Key> once(m.keys().begin(), m.keys().end());
    (void)sort_product_network(m);
    EXPECT_TRUE(std::equal(once.begin(), once.end(), m.keys().begin()))
        << f.name;
  }
}

TEST(InvariantTest, CostModelIsInputIndependent) {
  // The algorithm is oblivious: phase counts and formula time must not
  // depend on the data.
  const ProductGraph pg(labeled_petersen(), 2);
  std::mt19937_64 rng(13);
  CostModel reference;
  for (int pattern = 0; pattern < 5; ++pattern) {
    Machine m(pg, pattern_keys(pg.num_nodes(), pattern, rng));
    const SortReport report = sort_product_network(m);
    if (pattern == 0) {
      reference = report.cost;
    } else {
      EXPECT_EQ(report.cost.s2_phases, reference.s2_phases);
      EXPECT_EQ(report.cost.routing_phases, reference.routing_phases);
      EXPECT_DOUBLE_EQ(report.cost.formula_time, reference.formula_time);
      EXPECT_EQ(report.cost.exec_steps, reference.exec_steps);
    }
  }
}

TEST(InvariantTest, MultisetPreservedUnderEverySorter) {
  const ProductGraph pg(labeled_de_bruijn(3), 2);
  std::mt19937_64 rng(17);
  const auto keys = pattern_keys(pg.num_nodes(), 2, rng);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());

  const OracleS2 oracle;
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  for (const S2Sorter* s2 :
       {static_cast<const S2Sorter*>(&oracle),
        static_cast<const S2Sorter*>(&shear),
        static_cast<const S2Sorter*>(&oet)}) {
    Machine m(pg, keys);
    SortOptions options;
    options.s2 = s2;
    (void)sort_product_network(m, options);
    std::vector<Key> got(m.keys().begin(), m.keys().end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << s2->name();
  }
}

}  // namespace
}  // namespace prodsort
