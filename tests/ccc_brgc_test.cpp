// Cube-connected cycles factor and the binary-reflected-Gray-code fast
// path.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/product_sort.hpp"
#include "graph/factor_graphs.hpp"
#include "graph/graph_algos.hpp"
#include "product/snake_order.hpp"

namespace prodsort {
namespace {

TEST(CccTest, Structure) {
  const Graph g = make_cube_connected_cycles(3);
  EXPECT_EQ(g.num_nodes(), 24);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_EQ(g.num_edges(), 36u);  // 3-regular: 24*3/2
  EXPECT_TRUE(is_connected(g));
  // Cycle edge within word 0 and cube edge across bit 0.
  EXPECT_TRUE(g.has_edge(0, 1));      // (w=0,i=0)-(w=0,i=1)
  EXPECT_TRUE(g.has_edge(0, 3));      // (w=0,i=0)-(w=1,i=0)
  EXPECT_FALSE(g.has_edge(0, 4));     // (w=0,i=0)-(w=1,i=1): no such edge
}

TEST(CccTest, RejectsSmallOrders) {
  EXPECT_THROW((void)make_cube_connected_cycles(2), std::invalid_argument);
}

TEST(CccTest, LabeledFactorIsUsable) {
  const LabeledFactor f = labeled_ccc(3);
  EXPECT_EQ(f.size(), 24);
  EXPECT_LE(f.dilation, 3);
  EXPECT_GT(f.s2_cost, 0.0);
}

TEST(CccTest, ProductOfCccSorts) {
  const LabeledFactor f = labeled_ccc(3);
  const ProductGraph pg(f, 2);  // 576 processors
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  std::mt19937 rng(3);
  for (Key& k : keys) k = static_cast<Key>(rng() % 10000);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());
  Machine m(pg, std::move(keys));
  const SortReport report = sort_product_network(m);
  EXPECT_EQ(m.read_snake(full_view(pg)), expected);
  EXPECT_EQ(report.cost.s2_phases, 1);
}

TEST(BrgcTest, KnownValues) {
  EXPECT_EQ(brgc(0), 0);
  EXPECT_EQ(brgc(1), 1);
  EXPECT_EQ(brgc(2), 3);
  EXPECT_EQ(brgc(3), 2);
  EXPECT_EQ(brgc(4), 6);
  EXPECT_EQ(brgc(7), 4);
}

TEST(BrgcTest, InverseRoundTrip) {
  for (PNode i = 0; i < 4096; ++i) EXPECT_EQ(brgc_inverse(brgc(i)), i);
  const PNode big = (PNode{1} << 50) + 12345;
  EXPECT_EQ(brgc_inverse(brgc(big)), big);
}

TEST(BrgcTest, ConsecutiveCodesDifferInOneBit) {
  for (PNode i = 0; i + 1 < 4096; ++i) {
    const PNode diff = brgc(i) ^ brgc(i + 1);
    EXPECT_EQ(diff & (diff - 1), 0);
    EXPECT_NE(diff, 0);
  }
}

TEST(BrgcTest, MatchesGrayTupleDispatch) {
  // The N = 2 fast path must agree with the tuple maps bit for bit.
  for (const int r : {1, 5, 12}) {
    std::vector<NodeId> tuple(static_cast<std::size_t>(r));
    for (PNode rank = 0; rank < pow_int(2, r); ++rank) {
      gray_tuple(2, rank, tuple);
      const PNode gray = brgc(rank);
      for (int i = 0; i < r; ++i)
        EXPECT_EQ(tuple[static_cast<std::size_t>(i)],
                  static_cast<NodeId>((gray >> i) & 1));
      EXPECT_EQ(gray_rank(2, tuple), rank);
    }
  }
}

}  // namespace
}  // namespace prodsort
