#include "graph/factor_graphs.hpp"

#include <gtest/gtest.h>

#include "graph/graph_algos.hpp"

namespace prodsort {
namespace {

TEST(PathTest, Structure) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 4));
  EXPECT_EQ(diameter(g), 4);
}

TEST(PathTest, SingleNode) {
  const Graph g = make_path(1);
  EXPECT_EQ(g.num_nodes(), 1);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CycleTest, Structure) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_EQ(diameter(g), 3);
}

TEST(CycleTest, RejectsTooSmall) {
  EXPECT_THROW((void)make_cycle(2), std::invalid_argument);
}

TEST(CompleteTest, Structure) {
  const Graph g = make_complete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(diameter(g), 1);
}

TEST(K2Test, IsSingleEdge) {
  const Graph g = make_k2();
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(BinaryTreeTest, Structure) {
  const Graph g = make_complete_binary_tree(3);  // 7 nodes
  EXPECT_EQ(g.num_nodes(), 7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2);   // root
  EXPECT_EQ(g.degree(1), 3);   // internal
  EXPECT_EQ(g.degree(3), 1);   // leaf
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(2, 6));
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 4);  // leaf to leaf through the root
}

TEST(BinaryTreeTest, OneLevelIsSingleNode) {
  const Graph g = make_complete_binary_tree(1);
  EXPECT_EQ(g.num_nodes(), 1);
}

TEST(StarTest, Structure) {
  const Graph g = make_star(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 5);
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 1);
  EXPECT_EQ(diameter(g), 2);
}

TEST(PetersenTest, MatchesFig16) {
  const Graph g = make_petersen();
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);  // 3-regular
  EXPECT_EQ(diameter(g), 2);
  // Outer cycle, spokes, inner pentagram.
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_TRUE(g.has_edge(0, 5));
  EXPECT_TRUE(g.has_edge(5, 7));
  EXPECT_TRUE(g.has_edge(9, 6));
  EXPECT_FALSE(g.has_edge(5, 6));  // inner nodes skip by two
}

TEST(PetersenTest, GirthFive) {
  const Graph g = make_petersen();
  // No triangles and no 4-cycles: for every edge (a,b) the neighborhoods
  // of a and b intersect only in {a,b}-free ways.
  for (const auto& [a, b] : g.edges()) {
    for (const NodeId na : g.neighbors(a)) {
      if (na == b) continue;
      EXPECT_FALSE(g.has_edge(na, b)) << "triangle at " << a << "," << b;
      for (const NodeId nb : g.neighbors(b)) {
        if (nb == a || nb == na) continue;
        EXPECT_FALSE(g.has_edge(na, nb))
            << "4-cycle at " << a << "," << b << "," << na << "," << nb;
      }
    }
  }
}

TEST(DeBruijnTest, Structure) {
  const Graph g = make_de_bruijn(3);  // 8 nodes
  EXPECT_EQ(g.num_nodes(), 8);
  // Every edge follows the shift rule v = (2u + b) mod 8 in one direction.
  for (const auto& [a, b] : g.edges()) {
    const bool ab = ((2 * a) & 7) == b || ((2 * a + 1) & 7) == b;
    const bool ba = ((2 * b) & 7) == a || ((2 * b + 1) & 7) == a;
    EXPECT_TRUE(ab || ba) << a << "-" << b;
  }
  EXPECT_TRUE(is_connected(g));
  EXPECT_LE(g.max_degree(), 4);
}

TEST(DeBruijnTest, NoSelfLoopsAfterCollapse) {
  // Node 0 maps to 0, node 2^d-1 maps to itself: loops must be dropped.
  for (int d = 1; d <= 5; ++d) {
    const Graph g = make_de_bruijn(d);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_FALSE(g.has_edge(v, v));
  }
}

TEST(ShuffleExchangeTest, Structure) {
  const Graph g = make_shuffle_exchange(3);
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.has_edge(0, 1));  // exchange edge
  EXPECT_TRUE(g.has_edge(1, 2));  // shuffle: rot_left(001) = 010
  EXPECT_TRUE(g.has_edge(3, 6));  // rot_left(011) = 110
  EXPECT_LE(g.max_degree(), 3);
}

TEST(Grid2DTest, Structure) {
  const Graph g = make_grid2d(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(3, 4));  // row wrap must not exist
  EXPECT_EQ(diameter(g), 5);
}

}  // namespace
}  // namespace prodsort
