#include "service/sort_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/s2/snake_oet_s2.hpp"
#include "core/verify.hpp"
#include "service/admission_queue.hpp"
#include "service/circuit_breaker.hpp"
#include "service/service_types.hpp"

namespace prodsort {
namespace {

JobSpec make_job(std::int64_t id, std::int64_t deadline, int priority = 1) {
  JobSpec job;
  job.id = id;
  job.deadline = deadline;
  job.priority = priority;
  return job;
}

// --- shared vocabulary ---------------------------------------------------

TEST(ServiceTypesTest, NamesAreStableAndParseRoundTrips) {
  EXPECT_EQ(to_string(ShedPolicy::kDropTail), "drop-tail");
  EXPECT_EQ(to_string(ShedPolicy::kEdf), "edf");
  EXPECT_EQ(to_string(ShedPolicy::kPriority), "priority");
  for (const ShedPolicy p :
       {ShedPolicy::kDropTail, ShedPolicy::kEdf, ShedPolicy::kPriority})
    EXPECT_EQ(parse_shed_policy(to_string(p)), p);
  EXPECT_THROW((void)parse_shed_policy("lifo"), std::invalid_argument);

  EXPECT_EQ(to_string(JobOutcome::kOnTime), "on-time");
  EXPECT_EQ(to_string(JobOutcome::kShedQueueFull), "shed-queue-full");
  EXPECT_EQ(to_string(JobOutcome::kShedDeadline), "shed-deadline");
}

TEST(ServiceTypesTest, JobKeysArePureAndPatterned) {
  JobSpec a;
  a.key_seed = 42;
  a.pattern = 0;
  EXPECT_EQ(service_job_keys(64, a), service_job_keys(64, a));

  JobSpec b = a;
  b.key_seed = 43;
  EXPECT_NE(service_job_keys(64, a), service_job_keys(64, b));

  JobSpec binary = a;
  binary.pattern = 1;
  for (const Key k : service_job_keys(64, binary)) EXPECT_LE(k, 1);

  JobSpec reversed = a;
  reversed.pattern = 3;
  const auto keys = service_job_keys(8, reversed);
  EXPECT_TRUE(std::is_sorted(keys.rbegin(), keys.rend()));
}

// --- admission queue -----------------------------------------------------

TEST(AdmissionQueueTest, DropTailRejectsArrivalsWhenFull) {
  AdmissionQueue q({ShedPolicy::kDropTail, 2});
  EXPECT_FALSE(q.offer(make_job(0, 100)).has_value());
  EXPECT_FALSE(q.offer(make_job(1, 50)).has_value());
  const auto shed = q.offer(make_job(2, 10));  // tighter, but drop-tail
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->id, 2);
  // FIFO service order, regardless of deadline.
  EXPECT_EQ(q.pop(0, nullptr)->id, 0);
  EXPECT_EQ(q.pop(0, nullptr)->id, 1);
  EXPECT_EQ(q.high_water(), 2u);
}

TEST(AdmissionQueueTest, EdfEvictsLoosestAndShedsExpired) {
  AdmissionQueue q({ShedPolicy::kEdf, 2});
  EXPECT_FALSE(q.offer(make_job(0, 100)).has_value());
  EXPECT_FALSE(q.offer(make_job(1, 50)).has_value());
  // Tighter arrival evicts the loosest deadline (job 0).
  const auto shed = q.offer(make_job(2, 10));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->id, 0);
  // A looser arrival is itself rejected.
  const auto rejected = q.offer(make_job(3, 200));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->id, 3);
  // At dispatch time 60, job 2 (deadline 10) and job 1 (deadline 50)
  // are both expired: shed unserved rather than dispatched late.
  std::vector<JobSpec> expired;
  EXPECT_FALSE(q.pop(60, &expired).has_value());
  EXPECT_EQ(expired.size(), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(AdmissionQueueTest, EdfServesEarliestDeadlineFirst) {
  AdmissionQueue q({ShedPolicy::kEdf, 4});
  (void)q.offer(make_job(0, 300));
  (void)q.offer(make_job(1, 100));
  (void)q.offer(make_job(2, 200));
  std::vector<JobSpec> expired;
  EXPECT_EQ(q.pop(0, &expired)->id, 1);
  EXPECT_EQ(q.pop(0, &expired)->id, 2);
  EXPECT_EQ(q.pop(0, &expired)->id, 0);
  EXPECT_TRUE(expired.empty());
}

TEST(AdmissionQueueTest, PriorityEvictsOutrankedAndServesTiers) {
  AdmissionQueue q({ShedPolicy::kPriority, 2});
  EXPECT_FALSE(q.offer(make_job(0, 100, 2)).has_value());  // low
  EXPECT_FALSE(q.offer(make_job(1, 100, 1)).has_value());  // normal
  // High-priority arrival evicts the low-priority entry.
  const auto shed = q.offer(make_job(2, 100, 0));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->id, 0);
  // An equal-priority arrival does not outrank anyone: rejected.
  const auto rejected = q.offer(make_job(3, 100, 1));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->id, 3);
  // Highest tier first.
  EXPECT_EQ(q.pop(0, nullptr)->id, 2);
  EXPECT_EQ(q.pop(0, nullptr)->id, 1);
}

TEST(AdmissionQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(AdmissionQueue({ShedPolicy::kDropTail, 0}),
               std::invalid_argument);
}

// --- circuit breaker -----------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndProbes) {
  CircuitBreaker b({.failure_threshold = 3, .cooldown = 100});
  EXPECT_TRUE(b.allows(0));
  b.record_failure(0);
  b.record_failure(1);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  b.record_success();  // success clears the streak
  b.record_failure(2);
  b.record_failure(3);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  b.record_failure(4);  // third consecutive: trip
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.open_until(), 104);
  EXPECT_EQ(b.times_opened(), 1);

  EXPECT_FALSE(b.allows(50));  // cooling down
  EXPECT_TRUE(b.allows(104));  // cooldown elapsed: half-open probe
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  b.on_dispatch();
  EXPECT_FALSE(b.allows(104));  // one probe at a time

  b.record_failure(110);  // probe failed: reopen immediately
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.open_until(), 210);
  EXPECT_EQ(b.times_opened(), 2);

  EXPECT_TRUE(b.allows(210));
  b.on_dispatch();
  b.record_success();  // probe succeeded: close
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.allows(211));
}

TEST(CircuitBreakerTest, RejectsInvalidConfig) {
  EXPECT_THROW(CircuitBreaker({.failure_threshold = 0}),
               std::invalid_argument);
  EXPECT_THROW(CircuitBreaker({.failure_threshold = 1, .cooldown = 0}),
               std::invalid_argument);
}

// Half-open edge case: the cooldown expiring *exactly* on the probe
// tick admits the probe — open_until is the first admitting instant,
// not the last refusing one.
TEST(CircuitBreakerTest, CooldownExpiringExactlyOnProbeTickAdmits) {
  CircuitBreaker b({.failure_threshold = 1, .cooldown = 64});
  b.record_failure(100);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.open_until(), 164);
  EXPECT_FALSE(b.allows(163));
  EXPECT_EQ(b.state(), BreakerState::kOpen);  // refusal has no side effect
  EXPECT_TRUE(b.allows(164));                 // boundary instant admits
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
}

// Half-open edge case: a failure from a *concurrent* in-flight attempt
// lands while the probe is out.  The breaker reopens immediately; the
// probe's late success must clear the failure streak but NOT close the
// reopened breaker.
TEST(CircuitBreakerTest, ConcurrentFailureDuringProbeWinsOverLateSuccess) {
  CircuitBreaker b({.failure_threshold = 2, .cooldown = 100});
  b.record_failure(0);
  b.record_failure(1);  // trip
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_TRUE(b.allows(101));
  b.on_dispatch();  // probe in flight
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);

  b.record_failure(105);  // straggler attempt fails concurrently
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.open_until(), 205);  // cooldown restarted
  EXPECT_EQ(b.times_opened(), 2);

  b.record_success();  // the probe's success arrives late
  EXPECT_EQ(b.state(), BreakerState::kOpen);  // does not close an open breaker
  EXPECT_EQ(b.consecutive_failures(), 0);     // but does clear the streak
  EXPECT_FALSE(b.allows(204));
  EXPECT_TRUE(b.allows(205));
}

// Half-open edge case: the single-probe gate — once the probe is
// dispatched, every further admission is refused until it resolves,
// and resolving reopens the gate.
TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbeUntilResolution) {
  CircuitBreaker b({.failure_threshold = 1, .cooldown = 10});
  b.record_failure(0);
  EXPECT_TRUE(b.allows(10));
  b.on_dispatch();
  EXPECT_FALSE(b.allows(10));
  EXPECT_FALSE(b.allows(1000));  // time alone never unseats the probe
  b.record_success();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.allows(1000));
}

// The breaker state is part of the report's behavioral identity: two
// otherwise-identical reports with different breaker states must not
// hash equal (the repro replay gate compares hashes).
TEST(CircuitBreakerTest, BreakerStateFoldsIntoReportHashAndJson) {
  ServiceReport a;
  a.backends.resize(1);
  ServiceReport b = a;
  b.backends[0].breaker = BreakerState::kHalfOpen;
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.json().find("\"breaker\":\"closed\""), std::string::npos);
  EXPECT_NE(b.json().find("\"breaker\":\"half-open\""), std::string::npos);
}

// --- whole-service scenarios --------------------------------------------

ServiceConfig small_config(std::int64_t jobs, double load) {
  ServiceConfig config;
  config.seed = 7;
  config.jobs = jobs;
  config.load = load;
  config.queue = {ShedPolicy::kEdf, 8};
  config.breaker = {.failure_threshold = 2, .cooldown = 256};
  return config;
}

TEST(SortServiceTest, FaultFreePoolCompletesEveryJobVerified) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  SortService service(pg, small_config(20, 0.5),
                      std::vector<BackendConfig>(2), &oet);
  const ServiceReport report = service.run();
  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.completed_on_time + report.completed_late, 20);
  EXPECT_EQ(report.verified_jobs, 20);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.breaker_transitions, 0);
  EXPECT_GT(report.latency.p50, 0);
  for (const JobRecord& job : report.jobs) {
    EXPECT_TRUE(job.verified);
    EXPECT_GE(job.backend, 0);
    EXPECT_EQ(job.attempts, 1);
  }
}

// Satellite requirement: the ServiceReport is a pure function of the
// seed — bit-identical (hash-equal) for any executor thread count.
TEST(SortServiceTest, ReportHashIsThreadCountInvariant) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  ServiceConfig config = small_config(12, 1.5);

  std::vector<BackendConfig> backends(2);
  backends[1].fault_schedule = "seed=5,ce=0.002,crashes=4@7";

  std::vector<std::uint64_t> hashes;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, std::max(1, hw)}) {
    ParallelExecutor executor(threads);
    SortService service(pg, config, backends, &oet, &executor);
    const ServiceReport report = service.run();
    EXPECT_TRUE(report.conserved());
    hashes.push_back(report.hash());
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

// Acceptance criterion: a backend with a permanently failing schedule
// trips its breaker within K consecutive failures; traffic reroutes to
// the healthy backend with zero verification failures.
TEST(SortServiceTest, BreakerTripsWithinThresholdAndReroutes) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  ServiceConfig config = small_config(15, 0.75);
  config.retry_budget = 3;

  std::vector<BackendConfig> backends(2);
  // A permanent crash with no remap budget fails every attempt.
  backends[0].fault_schedule = "seed=9,crashes=4@3P";
  backends[0].recovery.max_remaps = 0;

  SortService service(pg, config, backends, &oet);
  const ServiceReport report = service.run();
  EXPECT_TRUE(report.conserved());

  const BackendHealth& sick = report.backends[0];
  const BackendHealth& healthy = report.backends[1];
  EXPECT_GE(sick.times_opened, 1);
  EXPECT_EQ(sick.failures, sick.attempts);  // it never once succeeded
  // Between trips the breaker admits at most K consecutive failures.
  EXPECT_LE(sick.attempts,
            (sick.times_opened + 1) *
                static_cast<std::int64_t>(config.breaker.failure_threshold));
  EXPECT_EQ(healthy.failures, 0);
  // Every completion is verified; reroutes show up as retries.
  EXPECT_EQ(report.verified_jobs,
            report.completed_on_time + report.completed_late);
  EXPECT_GT(report.retries, 0);
  for (const JobRecord& job : report.jobs) {
    if (job.outcome == JobOutcome::kOnTime ||
        job.outcome == JobOutcome::kLate) {
      EXPECT_TRUE(job.verified);
      EXPECT_EQ(job.backend, 1);  // served by the healthy backend
    }
  }
}

// Acceptance criterion: once the fault clears (fault_until), the
// half-open probe succeeds and the breaker closes again.
TEST(SortServiceTest, HalfOpenProbeClosesAfterFaultClears) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  ServiceConfig config = small_config(30, 1.0);
  config.retry_budget = 4;
  config.breaker = {.failure_threshold = 2, .cooldown = 64};

  // Probe the fault-free service time to place the fault window.
  const std::int64_t mean =
      SortService(pg, small_config(0, 1.0), std::vector<BackendConfig>(1),
                  &oet)
          .mean_service_steps();

  std::vector<BackendConfig> backends(2);
  backends[0].fault_schedule = "seed=9,crashes=4@3P";
  backends[0].recovery.max_remaps = 0;
  backends[0].fault_until = 6 * mean;  // heals mid-run

  SortService service(pg, config, backends, &oet);
  const ServiceReport report = service.run();
  EXPECT_TRUE(report.conserved());

  const BackendHealth& healed = report.backends[0];
  EXPECT_GE(healed.times_opened, 1);           // it did trip while sick
  EXPECT_EQ(healed.breaker, BreakerState::kClosed);  // and closed after
  EXPECT_GT(healed.attempts, healed.failures);  // served jobs once healed
}

// Acceptance criterion: with every product-network backend breaker-open,
// the service degrades to the host samplesort fallback instead of
// stalling, and fallback outputs are verified like any other.
TEST(SortServiceTest, AllBackendsOpenDegradesToSamplesortFallback) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  ServiceConfig config = small_config(12, 1.0);
  config.retry_budget = 6;
  config.breaker = {.failure_threshold = 1, .cooldown = 4096};

  std::vector<BackendConfig> backends(2);
  for (BackendConfig& b : backends) {
    b.fault_schedule = "seed=9,crashes=4@3P";
    b.recovery.max_remaps = 0;
  }

  SortService service(pg, config, backends, &oet);
  const ServiceReport report = service.run();
  EXPECT_TRUE(report.conserved());
  EXPECT_GT(report.fallback_jobs, 0);
  EXPECT_EQ(report.verified_jobs,
            report.completed_on_time + report.completed_late);
  bool saw_fallback = false;
  for (const JobRecord& job : report.jobs)
    if (job.fallback) {
      saw_fallback = true;
      EXPECT_EQ(job.backend, kFallbackBackend);
      EXPECT_TRUE(job.verified);
    }
  EXPECT_TRUE(saw_fallback);
}

// Overload behavior: at 2x capacity the queue bound holds, nothing is
// silently lost, and EDF's deadline-miss shedding beats drop-tail on
// the on-time completion count for the same offered traffic.
TEST(SortServiceTest, OverloadShedsWithoutLossAndEdfBeatsDropTail) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;

  std::int64_t on_time_by_policy[2] = {0, 0};
  int i = 0;
  for (const ShedPolicy policy : {ShedPolicy::kDropTail, ShedPolicy::kEdf}) {
    ServiceConfig config = small_config(40, 2.0);
    config.deadline_slack = 3.0;
    config.queue = {policy, 6};
    SortService service(pg, config, std::vector<BackendConfig>(2), &oet);
    const ServiceReport report = service.run();
    EXPECT_TRUE(report.conserved());
    EXPECT_LE(report.queue_high_water, 6);
    EXPECT_GT(report.shed_queue_full + report.shed_deadline, 0);
    on_time_by_policy[i++] = report.completed_on_time;
  }
  EXPECT_GT(on_time_by_policy[1], on_time_by_policy[0]);
}

// --- suspect ledger and the adaptive dial --------------------------------

TEST(SuspectLedgerTest, RiskIsLaplaceSmoothed) {
  SuspectLedger ledger;
  // A stranger's comparators score (0+1)/(0+2) = 0.5.
  EXPECT_DOUBLE_EQ(ledger.risk(3), 0.5);
  EXPECT_TRUE(ledger.suspect(3, 0.25));
  for (int i = 0; i < 18; ++i) ledger.record_attempt(3, false, {});
  EXPECT_DOUBLE_EQ(ledger.risk(3), 1.0 / 20.0);
  EXPECT_FALSE(ledger.suspect(3, 0.25));
  ledger.record_attempt(3, true, {5, 6});
  ledger.record_attempt(3, true, {6});
  EXPECT_DOUBLE_EQ(ledger.risk(3), 3.0 / 22.0);
  const SuspectLedger::BackendEntry* entry = ledger.entry(3);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->attempts, 20);
  EXPECT_EQ(entry->sdc_detected, 2);
  EXPECT_EQ(entry->node_hits.at(5), 1);
  EXPECT_EQ(entry->node_hits.at(6), 2);
}

TEST(SuspectLedgerTest, JsonRoundTripPreservesStateHash) {
  SuspectLedger ledger;
  ledger.record_attempt(0, false, {});
  ledger.record_attempt(1, true, {12, 14, 12});
  ledger.record_attempt(1, false, {});
  const SuspectLedger copy = SuspectLedger::from_json(ledger.to_json());
  EXPECT_EQ(copy.state_hash(), ledger.state_hash());
  EXPECT_EQ(copy.to_json(), ledger.to_json());
  EXPECT_DOUBLE_EQ(copy.risk(1), ledger.risk(1));

  // A corrupted ledger file must fail loudly, not load as empty.
  EXPECT_THROW((void)SuspectLedger::from_json("{]"), std::invalid_argument);
  EXPECT_THROW((void)SuspectLedger::from_json("not json at all"),
               std::invalid_argument);
  EXPECT_EQ(SuspectLedger::from_json("{\"version\":1,\"backends\":[]}")
                .state_hash(),
            SuspectLedger().state_hash());
}

TEST(SuspectLedgerTest, QuarantineNamesOnlyConcentratedAttribution) {
  SuspectLedger ledger;
  // Backend 0: every failing certificate implicates node 3 (plus a
  // scattering of others) — concentrated.
  for (int i = 0; i < 6; ++i) ledger.record_attempt(0, true, {3});
  ledger.record_attempt(0, true, {5});
  EXPECT_EQ(ledger.quarantine_nodes(0, 0.5, 2),
            (std::vector<std::int64_t>{3}));
  // Backend 1: hits spread evenly — diffuse, no single comparator to
  // blame, so the selective-TMR rung must handle it instead.
  for (int i = 0; i < 6; ++i)
    ledger.record_attempt(1, true, {i});
  EXPECT_TRUE(ledger.quarantine_nodes(1, 0.5, 2).empty());
  // The min_hits floor: one concentrated hit is not evidence.
  ledger.record_attempt(2, true, {7});
  EXPECT_TRUE(ledger.quarantine_nodes(2, 0.5, 2).empty());
  EXPECT_EQ(ledger.quarantine_nodes(2, 0.5, 1),
            (std::vector<std::int64_t>{7}));
  // Unknown backends have no attribution at all.
  EXPECT_TRUE(ledger.quarantine_nodes(9, 0.5, 1).empty());
}

// Satellite requirement: a ledger file the operator pointed at must
// fail loudly — missing, truncated, or corrupt all throw named errors;
// none may load as silently empty.
TEST(SuspectLedgerTest, LedgerFileFailuresAreLoud) {
  const std::string missing =
      testing::TempDir() + "no_such_ledger_anywhere.json";
  try {
    (void)load_ledger_file(missing);
    FAIL() << "missing ledger file must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << "error must name the path";
  }

  const std::string corrupt = testing::TempDir() + "corrupt_ledger.json";
  {
    std::ofstream out(corrupt);
    out << "{\"version\":1,\"backends\":[{\"id\":0,";  // truncated mid-entry
  }
  EXPECT_THROW((void)load_ledger_file(corrupt), std::invalid_argument);
  {
    std::ofstream out(corrupt);
    out << "not json at all";
  }
  EXPECT_THROW((void)load_ledger_file(corrupt), std::invalid_argument);

  // And a good file round-trips the exact state.
  SuspectLedger ledger;
  ledger.record_attempt(1, true, {12, 14});
  const std::string good = testing::TempDir() + "good_ledger.json";
  {
    std::ofstream out(good);
    out << ledger.to_json();
  }
  EXPECT_EQ(load_ledger_file(good).state_hash(), ledger.state_hash());
  std::remove(corrupt.c_str());
  std::remove(good.c_str());
}

// Adaptive mode stays a pure function of the seed: report hashes (which
// fold cert levels, escalations, and the ledger digest) are identical
// for any executor thread count.
TEST(SortServiceTest, AdaptiveReportHashIsThreadCountInvariant) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  ServiceConfig config = small_config(12, 1.5);
  config.adaptive.enabled = true;
  config.adaptive.sdc_budget = 0.01;

  std::vector<BackendConfig> backends(2);
  backends[1].fault_schedule = "seed=5,comparators=3@2~40I";

  std::vector<std::uint64_t> hashes;
  std::vector<std::uint64_t> ledger_hashes;
  for (const int threads : {1, 4}) {
    ParallelExecutor executor(threads);
    SortService service(pg, config, backends, &oet, &executor);
    const ServiceReport report = service.run();
    EXPECT_TRUE(report.conserved());
    EXPECT_DOUBLE_EQ(report.sdc_budget, 0.01);
    hashes.push_back(report.hash());
    ledger_hashes.push_back(report.ledger_hash);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(ledger_hashes[0], ledger_hashes[1]);
}

// The hardening ladder's cheap rung: with a preloaded ledger naming one
// backend as the suspect and every hit attributed to ONE comparator,
// dispatch quarantines that comparator (BFS-routes merges around it,
// ~1x comparisons) instead of paying the 3x selective-TMR vote — and
// the clean-history backend pays neither.
TEST(SortServiceTest, ConcentratedLedgerDrivesQuarantineNotTmr) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  ServiceConfig config = small_config(16, 0.8);
  config.adaptive.enabled = true;
  config.adaptive.sdc_budget = 0.05;

  // Backend 0: long clean history (risk 1/30).  Backend 1: chronic SDC
  // producer (risk 25/30), every failed certificate implicating node 3.
  SuspectLedger history;
  for (int i = 0; i < 28; ++i) history.record_attempt(0, false, {});
  for (int i = 0; i < 28; ++i) history.record_attempt(1, i < 24, {3});
  config.adaptive.ledger_json = history.to_json();

  SortService service(pg, config, std::vector<BackendConfig>(2), &oet);
  const ServiceReport report = service.run();
  EXPECT_TRUE(report.conserved());

  ASSERT_EQ(report.backends.size(), 2u);
  const BackendHealth& clean = report.backends[0];
  const BackendHealth& shady = report.backends[1];
  EXPECT_FALSE(clean.suspect);
  EXPECT_EQ(clean.tmr_attempts, 0);
  EXPECT_EQ(clean.quarantine_attempts, 0);
  EXPECT_GT(clean.attempts, 0);
  // Clean history + generous budget → the dial drops below full.
  EXPECT_LT(clean.cert_level, 2);
  EXPECT_TRUE(shady.suspect);
  EXPECT_GT(shady.quarantine_attempts, 0);
  EXPECT_EQ(shady.quarantine_attempts, shady.attempts);
  EXPECT_EQ(shady.tmr_attempts, 0);  // concentrated: never pays the vote
  // Quarantined attempts carry a full end-to-end certificate; both
  // backends are actually fault-free here, so every job verifies and
  // the run attributes no new SDC.
  EXPECT_EQ(report.verified_jobs,
            report.completed_on_time + report.completed_late);
  EXPECT_EQ(report.sdc_detected, 0);
  // The exported attribution carries the preloaded history forward.
  EXPECT_EQ(shady.sdc_attributed, 24);
  EXPECT_NE(report.ledger_hash, 0u);
}

// The ladder's escalation rung: when the attribution is *diffuse* (no
// single comparator holds the min-share of hits), there is nothing to
// quarantine and dispatch falls back to selective TMR on exactly the
// suspect backend.
TEST(SortServiceTest, DiffuseLedgerEscalatesToSelectiveTmr) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  ServiceConfig config = small_config(16, 0.8);
  config.adaptive.enabled = true;
  config.adaptive.sdc_budget = 0.05;

  // Backend 1's failing certificates implicate a different node every
  // time: suspect, but with no comparator to blame.
  SuspectLedger history;
  for (int i = 0; i < 28; ++i) history.record_attempt(0, false, {});
  for (int i = 0; i < 28; ++i)
    history.record_attempt(1, i < 24, {i % 8});
  config.adaptive.ledger_json = history.to_json();

  SortService service(pg, config, std::vector<BackendConfig>(2), &oet);
  const ServiceReport report = service.run();
  EXPECT_TRUE(report.conserved());

  ASSERT_EQ(report.backends.size(), 2u);
  const BackendHealth& shady = report.backends[1];
  EXPECT_TRUE(shady.suspect);
  EXPECT_EQ(shady.quarantine_attempts, 0);
  EXPECT_GT(shady.tmr_attempts, 0);
  EXPECT_EQ(shady.tmr_attempts, shady.attempts);
  EXPECT_EQ(report.backends[0].tmr_attempts, 0);
}

TEST(SortServiceTest, RejectsInvalidConfig) {
  const ProductGraph pg(labeled_path(2), 2);
  const SnakeOETS2 oet;
  EXPECT_THROW(SortService(pg, small_config(1, 1.0), {}, &oet),
               std::invalid_argument);
  EXPECT_THROW(SortService(pg, small_config(1, 0.0),
                           std::vector<BackendConfig>(1), &oet),
               std::invalid_argument);
  std::vector<BackendConfig> bad(1);
  bad[0].fault_schedule = "seed=abc";
  EXPECT_THROW(SortService(pg, small_config(1, 1.0), bad, &oet),
               std::invalid_argument);
}

}  // namespace
}  // namespace prodsort
