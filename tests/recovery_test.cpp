#include "network/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/s2/snake_oet_s2.hpp"
#include "core/verify.hpp"
#include "product/degraded_view.hpp"
#include "product/snake_order.hpp"

namespace prodsort {
namespace {

std::vector<Key> random_keys(PNode count, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<Key> keys(static_cast<std::size_t>(count));
  for (Key& k : keys) k = static_cast<Key>(rng() % 100000);
  return keys;
}

/// Synchronous-phase count of the fault-free schedule, read off the
/// machine's fault clock by attaching an all-zero FaultModel (which only
/// ticks the clock — the run stays bit-identical).
std::int64_t probe_phases(const ProductGraph& pg, const SortOptions& options) {
  FaultConfig tick;
  FaultModel clock(tick);
  Machine m(pg, random_keys(pg.num_nodes(), 1), nullptr);
  m.set_fault_model(&clock);
  (void)sort_product_network(m, options);
  return m.fault_phase();
}

SortOptions oet_options(const SnakeOETS2& oet) {
  SortOptions options;
  options.s2 = &oet;
  return options;
}

TEST(RecoveryTest, PathNamesAreStable) {
  EXPECT_EQ(to_string(RecoveryPath::kNone), "none");
  EXPECT_EQ(to_string(RecoveryPath::kReexecOnly), "reexec-only");
  EXPECT_EQ(to_string(RecoveryPath::kRollback), "rollback");
  EXPECT_EQ(to_string(RecoveryPath::kDegradedRemap), "degraded-remap");
  EXPECT_EQ(to_string(RecoveryPath::kFailed), "failed");
}

TEST(RecoveryTest, RejectsNegativeBudgets) {
  const ProductGraph pg(labeled_path(2), 2);
  Machine m(pg, random_keys(pg.num_nodes(), 2));
  EXPECT_THROW(RecoveryController(m, {.max_rollbacks = -1}),
               std::invalid_argument);
  EXPECT_THROW(RecoveryController(m, {.max_remaps = -1}),
               std::invalid_argument);
}

TEST(RecoveryTest, CrashFreeRunReportsNoPath) {
  const ProductGraph pg(labeled_path(3), 2);
  const auto keys = random_keys(pg.num_nodes(), 3);
  Machine m(pg, keys);
  FaultModel fm{FaultConfig{}};
  m.set_fault_model(&fm);
  const SnakeOETS2 oet;
  RecoveryController controller(m);
  const CrashRecoveryReport report = controller.run(oet_options(oet));
  EXPECT_EQ(report.path, RecoveryPath::kNone);
  EXPECT_TRUE(report.sorted);
  EXPECT_FALSE(report.data_loss);
  EXPECT_EQ(report.crashes, 0);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(report.output, expected);
}

TEST(RecoveryTest, DegradedSnakeOetSortsTheSurvivors) {
  const ProductGraph pg(labeled_path(3), 2);
  const auto keys = random_keys(pg.num_nodes(), 4);
  Machine m(pg, keys);
  FaultModel fm{FaultConfig{}};
  m.set_fault_model(&fm);
  const PNode dead = node_at_snake_rank(pg, 4);
  fm.kill(dead);

  const DegradedView dv(pg, full_view(pg), fm.dead_nodes());
  int hop_even = 1;
  int hop_odd = 1;
  const auto even = degraded_oet_pairs(dv, 0, &hop_even);
  EXPECT_EQ(even.size(), static_cast<std::size_t>(dv.live_size() / 2));
  const auto odd = degraded_oet_pairs(dv, 1, &hop_odd);
  EXPECT_EQ(odd.size(), static_cast<std::size_t>((dv.live_size() - 1) / 2));
  // Every consecutive live pair belongs to exactly one parity, so the
  // two parities together see the worst detour around the hole.
  EXPECT_EQ(std::max(hop_even, hop_odd), dv.max_hop());
  EXPECT_GE(dv.max_hop(), 2);

  sort_degraded_snake(m, dv);
  const std::vector<Key> live = read_degraded_snake(m, dv);
  EXPECT_EQ(live.size(), static_cast<std::size_t>(dv.live_size()));
  EXPECT_TRUE(std::is_sorted(live.begin(), live.end()));
  EXPECT_TRUE(certify_degraded(m, dv).sorted);
}

// Satellite requirement: a crash injected at EVERY phase index of the
// N=3, r=2 sort (9 nodes) must recover to a verified sorted snake —
// restartable and permanent alike — under the Debug disjointness sweep.
TEST(RecoveryTest, CrashAtEveryPhaseIndexRecoversOnSmallGrid) {
  const ProductGraph pg(labeled_path(3), 2);
  const SnakeOETS2 oet;
  const SortOptions options = oet_options(oet);
  const std::int64_t phases = probe_phases(pg, options);
  ASSERT_GT(phases, 0);

  const auto keys = random_keys(pg.num_nodes(), 5);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());

  for (std::int64_t phase = 0; phase < phases; ++phase) {
    for (const bool permanent : {false, true}) {
      FaultConfig config;
      config.seed = 50 + static_cast<std::uint64_t>(phase);
      config.crash_schedule.push_back(
          {.node = phase % pg.num_nodes(), .phase = phase,
           .permanent = permanent});
      FaultModel fm(config);
      Machine m(pg, keys);
      m.set_fault_model(&fm);
      RecoveryController controller(m, {.checkpoint_interval = 4});
      const CrashRecoveryReport report = controller.run(options);

      SCOPED_TRACE(testing::Message()
                   << "phase=" << phase << " permanent=" << permanent
                   << " path=" << to_string(report.path));
      EXPECT_EQ(report.crashes, 1);
      EXPECT_NE(report.path, RecoveryPath::kFailed);
      EXPECT_NE(report.path, RecoveryPath::kNone);
      EXPECT_TRUE(report.sorted);
      EXPECT_FALSE(report.data_loss);
      // A single crash can never wipe both checkpoint copies, so the
      // full multiset survives — orphans included.
      EXPECT_TRUE(report.lost_entries.empty());
      EXPECT_EQ(report.output, expected);
      if (permanent)
        EXPECT_EQ(report.dead.size(), 1u);
      else
        EXPECT_TRUE(report.dead.empty());
    }
  }
}

// Acceptance bar: a sort of N^r >= 81 keys survives ANY single
// fail-stop crash at any phase index, producing a verified sorted snake
// (full or degraded) with the recovery path recorded in the CostModel.
TEST(RecoveryTest, AnySingleCrashOn81NodesProducesASortedSnake) {
  const ProductGraph pg(labeled_path(3), 4);  // 81 nodes
  ASSERT_GE(pg.num_nodes(), 81);
  const SnakeOETS2 oet;
  const SortOptions options = oet_options(oet);
  const std::int64_t phases = probe_phases(pg, options);
  ASSERT_GT(phases, 0);

  const auto keys = random_keys(pg.num_nodes(), 6);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());

  for (std::int64_t phase = 0; phase < phases; ++phase) {
    // Alternate crash flavors along the sweep so both the rollback and
    // the degraded-remap rungs are exercised across the schedule.
    FaultConfig config;
    config.seed = 90 + static_cast<std::uint64_t>(phase);
    config.crash_schedule.push_back({.node = (phase * 7) % pg.num_nodes(),
                                     .phase = phase,
                                     .permanent = phase % 2 == 1});
    FaultModel fm(config);
    Machine m(pg, keys);
    m.set_fault_model(&fm);
    RecoveryController controller(m, {.checkpoint_interval = 8});
    const CrashRecoveryReport report = controller.run(options);

    SCOPED_TRACE(testing::Message() << "phase=" << phase << " path="
                                    << to_string(report.path));
    EXPECT_TRUE(report.sorted);
    EXPECT_FALSE(report.data_loss);
    EXPECT_EQ(report.output, expected);
    EXPECT_NE(report.path, RecoveryPath::kFailed);
    // The machine-readable trail: the crash and its recovery work are
    // in the CostModel.
    EXPECT_EQ(m.cost().crashes, 1);
    if (report.path == RecoveryPath::kRollback) {
      EXPECT_GT(m.cost().rollbacks, 0);
    }
    if (report.path == RecoveryPath::kDegradedRemap) {
      EXPECT_GT(m.cost().remap_sorts, 0);
    }
  }
}

TEST(RecoveryTest, PermanentCrashTakesTheDegradedRemapRung) {
  const ProductGraph pg(labeled_path(3), 2);
  const auto keys = random_keys(pg.num_nodes(), 7);
  FaultConfig config;
  config.seed = 11;
  config.crash_schedule.push_back({.node = 4, .phase = 2, .permanent = true});
  FaultModel fm(config);
  Machine m(pg, keys);
  m.set_fault_model(&fm);
  const SnakeOETS2 oet;
  RecoveryController controller(m);
  const CrashRecoveryReport report = controller.run(oet_options(oet));

  EXPECT_EQ(report.path, RecoveryPath::kDegradedRemap);
  EXPECT_TRUE(report.sorted);
  EXPECT_FALSE(report.data_loss);
  ASSERT_EQ(report.dead.size(), 1u);
  EXPECT_EQ(report.dead.front(), 4);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(report.output, expected);  // the orphan key is merged back
  EXPECT_GT(m.cost().remap_sorts, 0);
}

// Regression for trial loops: fault/recovery counters must start from
// zero each trial, so two identical seeded trials report identical
// numbers no matter what ran before them.
TEST(RecoveryTest, IdenticalSeededTrialsReportIdenticalCounters) {
  const ProductGraph pg(labeled_path(3), 2);
  const auto keys = random_keys(pg.num_nodes(), 8);
  FaultConfig config;
  config.seed = 13;
  config.crash_schedule.push_back({.node = 2, .phase = 3, .permanent = false});
  config.crash_schedule.push_back({.node = 7, .phase = 9, .permanent = true});
  const SnakeOETS2 oet;
  const SortOptions options = oet_options(oet);

  FaultModel fm(config);  // shared across trials, reset between them
  CostModel first;
  std::vector<Key> first_output;
  for (int trial = 0; trial < 2; ++trial) {
    fm.reset();
    Machine m(pg, keys);
    m.set_fault_model(&fm);
    RecoveryController controller(m, {.checkpoint_interval = 4});
    const CrashRecoveryReport report = controller.run(options);
    if (trial == 0) {
      first = m.cost();
      first_output = report.output;
      // reset_fault_counters() zeroes exactly the fault/recovery block
      // and leaves the paper clocks and work counters alone.
      const CostModel before = m.cost();
      m.cost().reset_fault_counters();
      EXPECT_EQ(m.cost().crashes, 0);
      EXPECT_EQ(m.cost().retries, 0);
      EXPECT_EQ(m.cost().reexec_phases, 0);
      EXPECT_EQ(m.cost().checkpoints, 0);
      EXPECT_EQ(m.cost().checkpoint_steps, 0);
      EXPECT_EQ(m.cost().rollbacks, 0);
      EXPECT_EQ(m.cost().remap_sorts, 0);
      EXPECT_EQ(m.cost().recovery_steps, 0);
      EXPECT_EQ(m.cost().exec_steps, before.exec_steps);
      EXPECT_EQ(m.cost().comparisons, before.comparisons);
      EXPECT_EQ(m.cost().exchanges, before.exchanges);
    } else {
      EXPECT_EQ(m.cost().crashes, first.crashes);
      EXPECT_EQ(m.cost().reexec_phases, first.reexec_phases);
      EXPECT_EQ(m.cost().checkpoints, first.checkpoints);
      EXPECT_EQ(m.cost().checkpoint_steps, first.checkpoint_steps);
      EXPECT_EQ(m.cost().rollbacks, first.rollbacks);
      EXPECT_EQ(m.cost().remap_sorts, first.remap_sorts);
      EXPECT_EQ(m.cost().recovery_steps, first.recovery_steps);
      EXPECT_EQ(m.cost().exec_steps, first.exec_steps);
      EXPECT_EQ(report.output, first_output);
    }
  }
}

// Satellite regression: the sort service retries jobs on the SAME
// machine back to back without resetting its cumulative cost counters.
// The report's crash/checkpoint numbers are per-run deltas, so a second
// recovered sort must report its own run — not the running total — while
// the machine's counters keep accumulating underneath.
TEST(RecoveryTest, BackToBackRunsOnOneMachineReportPerRunDeltas) {
  const ProductGraph pg(labeled_path(3), 2);
  FaultConfig config;
  config.seed = 23;
  config.crash_schedule.push_back({.node = 4, .phase = 3, .permanent = false});
  FaultModel fm(config);
  const SnakeOETS2 oet;

  Machine m(pg, random_keys(pg.num_nodes(), 23));
  m.set_fault_model(&fm);
  RecoveryController controller(m, {.checkpoint_interval = 2});

  const CrashRecoveryReport first = controller.run(oet_options(oet));
  ASSERT_TRUE(first.sorted);
  ASSERT_FALSE(first.data_loss);
  EXPECT_EQ(first.crashes, 1);
  EXPECT_GT(first.checkpoints, 0);

  // Re-arm the schedule and the phase clock only; the machine's
  // cumulative CostModel is deliberately NOT reset.
  fm.reset();
  m.reset_fault_clock();
  const CrashRecoveryReport second = controller.run(oet_options(oet));
  ASSERT_TRUE(second.sorted);
  ASSERT_FALSE(second.data_loss);

  // The compare-exchange schedule is oblivious, so the second run fires
  // the same crash at the same phase and must report identical per-run
  // deltas — double-counting would report the cumulative totals here.
  EXPECT_EQ(second.crashes, first.crashes);
  EXPECT_EQ(second.rollbacks, first.rollbacks);
  EXPECT_EQ(second.remaps, first.remaps);
  EXPECT_EQ(second.checkpoints, first.checkpoints);
  EXPECT_EQ(second.reexec_phases, first.reexec_phases);

  // The machine's own counters stay cumulative across the two runs.
  EXPECT_EQ(m.cost().crashes, first.crashes + second.crashes);
  EXPECT_EQ(m.cost().checkpoints, first.checkpoints + second.checkpoints);
  EXPECT_EQ(m.cost().checkpoint_steps,
            first.checkpoint_steps + second.checkpoint_steps);
  EXPECT_EQ(m.cost().recovery_steps,
            first.recovery_steps + second.recovery_steps);
  EXPECT_EQ(m.cost().reexec_phases,
            first.reexec_phases + second.reexec_phases);
}

}  // namespace
}  // namespace prodsort
