#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prodsort {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, ConstructionAllocatesNodes) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0);
}

TEST(GraphTest, NegativeNodeCountThrows) {
  EXPECT_THROW(Graph(-1), std::invalid_argument);
}

TEST(GraphTest, AddEdgeCreatesSymmetricAdjacency) {
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(GraphTest, SelfLoopRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphTest, DuplicateEdgeRejected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW((void)g.neighbors(3), std::out_of_range);
}

TEST(GraphTest, EdgesAreStoredNormalized) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  ASSERT_EQ(g.edges().size(), 2u);
  EXPECT_EQ(g.edges()[0], (std::pair<NodeId, NodeId>{1, 3}));
  EXPECT_EQ(g.edges()[1], (std::pair<NodeId, NodeId>{0, 2}));
}

TEST(GraphTest, MinMaxDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.max_degree(), 3);
  EXPECT_EQ(g.min_degree(), 1);
}

TEST(GraphTest, RelabeledPreservesStructure) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  // New node i is old node perm[i]: reverse the path.
  const NodeId perm[] = {3, 2, 1, 0};
  const Graph h = g.relabeled(perm);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_TRUE(h.has_edge(0, 1));  // old (3,2)
  EXPECT_TRUE(h.has_edge(1, 2));
  EXPECT_TRUE(h.has_edge(2, 3));
}

TEST(GraphTest, RelabeledRejectsNonPermutation) {
  Graph g(3);
  const NodeId dup[] = {0, 0, 1};
  EXPECT_THROW((void)g.relabeled(dup), std::invalid_argument);
  const NodeId small[] = {0, 1};
  EXPECT_THROW((void)g.relabeled(small), std::invalid_argument);
}

TEST(GraphTest, NeighborsSpanReflectsInsertionOrder) {
  Graph g(4);
  g.add_edge(1, 3);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  const auto nbrs = g.neighbors(1);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 3);
  EXPECT_EQ(nbrs[1], 0);
  EXPECT_EQ(nbrs[2], 2);
}

}  // namespace
}  // namespace prodsort
