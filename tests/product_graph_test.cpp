#include "product/product_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph_algos.hpp"
#include "graph/labeled_factor.hpp"
#include "product/subgraph_view.hpp"

namespace prodsort {
namespace {

// Materializes the product graph as an explicit Graph (small cases only).
Graph materialize(const ProductGraph& pg) {
  Graph g(static_cast<NodeId>(pg.num_nodes()));
  for (PNode a = 0; a < pg.num_nodes(); ++a)
    for (const PNode b : pg.neighbors(a))
      if (a < b) g.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
  return g;
}

TEST(ProductGraphTest, SizesAndWeights) {
  const ProductGraph pg(labeled_path(3), 3);
  EXPECT_EQ(pg.radix(), 3);
  EXPECT_EQ(pg.dims(), 3);
  EXPECT_EQ(pg.num_nodes(), 27);
  EXPECT_EQ(pg.weight(1), 1);
  EXPECT_EQ(pg.weight(2), 3);
  EXPECT_EQ(pg.weight(3), 9);
}

TEST(ProductGraphTest, DigitArithmetic) {
  const ProductGraph pg(labeled_path(4), 3);
  const PNode node = pg.node_of(std::vector<NodeId>{2, 0, 3});  // dims 1,2,3
  EXPECT_EQ(node, 2 + 0 * 4 + 3 * 16);
  EXPECT_EQ(pg.digit(node, 1), 2);
  EXPECT_EQ(pg.digit(node, 2), 0);
  EXPECT_EQ(pg.digit(node, 3), 3);
  EXPECT_EQ(pg.with_digit(node, 2, 1), node + 4);
  EXPECT_EQ(pg.tuple_of(node), (std::vector<NodeId>{2, 0, 3}));
}

TEST(ProductGraphTest, AdjacencyFollowsDefinition1) {
  // Two nodes adjacent iff they differ in exactly one position and the
  // differing symbols are adjacent in G.
  const ProductGraph pg(labeled_path(3), 2);
  EXPECT_TRUE(pg.adjacent(pg.node_of(std::vector<NodeId>{0, 1}),
                          pg.node_of(std::vector<NodeId>{1, 1})));
  EXPECT_FALSE(pg.adjacent(pg.node_of(std::vector<NodeId>{0, 1}),
                           pg.node_of(std::vector<NodeId>{2, 1})));  // 0-2 not in path
  EXPECT_FALSE(pg.adjacent(pg.node_of(std::vector<NodeId>{0, 0}),
                           pg.node_of(std::vector<NodeId>{1, 1})));  // two positions
  EXPECT_FALSE(pg.adjacent(5, 5));
}

TEST(ProductGraphTest, NeighborsMatchAdjacentPredicate) {
  const ProductGraph pg(labeled_cycle(4), 2);
  for (PNode a = 0; a < pg.num_nodes(); ++a) {
    const auto nbrs = pg.neighbors(a);
    const std::set<PNode> nbr_set(nbrs.begin(), nbrs.end());
    EXPECT_EQ(nbrs.size(), nbr_set.size());  // no duplicates
    for (PNode b = 0; b < pg.num_nodes(); ++b)
      EXPECT_EQ(pg.adjacent(a, b), nbr_set.contains(b)) << a << "," << b;
  }
}

TEST(ProductGraphTest, EdgeCountFormula) {
  // |E(PG_r)| = r * N^(r-1) * |E(G)| — checked against materialization.
  for (const LabeledFactor& f :
       {labeled_path(3), labeled_cycle(4), labeled_k2(), labeled_star(4)}) {
    for (int r = 1; r <= 3; ++r) {
      const ProductGraph pg(f, r);
      if (pg.num_nodes() > 512) continue;
      const Graph g = materialize(pg);
      EXPECT_EQ(static_cast<PNode>(g.num_edges()), pg.num_edges())
          << f.name << " r=" << r;
    }
  }
}

TEST(ProductGraphTest, HypercubeEmergesFromK2) {
  const ProductGraph pg(labeled_k2(), 4);
  EXPECT_EQ(pg.num_nodes(), 16);
  EXPECT_EQ(pg.num_edges(), 32);  // r 2^(r-1) = 4*8
  const Graph g = materialize(pg);
  EXPECT_EQ(diameter(g), 4);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  // Hypercube adjacency = single-bit difference.
  for (const auto& [a, b] : g.edges()) {
    const unsigned diff = static_cast<unsigned>(a) ^ static_cast<unsigned>(b);
    EXPECT_EQ(diff & (diff - 1), 0u);
  }
}

TEST(ProductGraphTest, GridEmergesFromPaths) {
  const ProductGraph pg(labeled_path(4), 2);
  const Graph g = materialize(pg);
  EXPECT_EQ(g.num_edges(), 24u);  // 2 * 4 * 3
  EXPECT_EQ(diameter(g), 6);      // r * diameter(G)
  EXPECT_EQ(pg.diameter(), 6);
}

TEST(ProductGraphTest, TorusFromCycles) {
  const ProductGraph pg(labeled_cycle(4), 2);
  const Graph g = materialize(pg);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(diameter(g), 4);
}

TEST(ProductGraphTest, DiameterIsDimensionSum) {
  for (const LabeledFactor& f : {labeled_path(3), labeled_petersen()}) {
    const ProductGraph pg(f, 2);
    if (pg.num_nodes() <= 256) {
      const Graph g = materialize(pg);
      EXPECT_EQ(diameter(g), pg.diameter()) << f.name;
    }
  }
}

TEST(ProductGraphTest, RejectsBadArguments) {
  EXPECT_THROW(ProductGraph(labeled_path(3), 0), std::invalid_argument);
  const ProductGraph pg(labeled_path(3), 2);
  EXPECT_THROW((void)pg.node_of(std::vector<NodeId>{1, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)pg.node_of(std::vector<NodeId>{3, 0}), std::out_of_range);
}

TEST(ProductGraphTest, RejectsOverflowingProduct) {
  EXPECT_THROW(ProductGraph(labeled_path(10), 20), std::invalid_argument);
}

TEST(ProductGraphTest, EdgeCountOverflowIsDiagnosed) {
  // K2 with r = 62 is a constructible product (2^62 nodes) whose edge
  // count 62 * 2^61 exceeds 63 bits: num_edges must throw, not return
  // a wrapped value.
  const ProductGraph huge(labeled_k2(), 62);
  EXPECT_EQ(huge.num_nodes(), PNode{1} << 62);
  EXPECT_THROW((void)huge.num_edges(), std::overflow_error);
  // Comfortably-sized products still report exact counts.
  EXPECT_EQ(ProductGraph(labeled_k2(), 20).num_edges(), 20ll << 19);
}

// ----------------------------------------------------------------- views

TEST(ViewTest, FullViewCoversEverything) {
  const ProductGraph pg(labeled_path(3), 3);
  const ViewSpec v = full_view(pg);
  EXPECT_EQ(view_size(pg, v), 27);
  EXPECT_EQ(view_node(pg, v, 13), 13);
  EXPECT_EQ(view_local(pg, v, 13), 13);
  EXPECT_TRUE(view_contains(pg, v, 26));
}

TEST(ViewTest, FixHighMatchesPaperNotation) {
  // [u]PG_2^3 of PG_3: nodes whose dimension-3 digit is u.
  const ProductGraph pg(labeled_path(3), 3);
  const ViewSpec v = fix_high(pg, full_view(pg), 2);
  EXPECT_EQ(v.lo, 1);
  EXPECT_EQ(v.hi, 2);
  EXPECT_EQ(view_size(pg, v), 9);
  for (PNode local = 0; local < 9; ++local) {
    const PNode node = view_node(pg, v, local);
    EXPECT_EQ(pg.digit(node, 3), 2);
    EXPECT_EQ(view_local(pg, v, node), local);
    EXPECT_TRUE(view_contains(pg, v, node));
  }
}

TEST(ViewTest, FixLowMatchesPaperNotation) {
  // [u]PG_2^1 of PG_3 (Fig. 2): nodes whose dimension-1 digit is u.
  const ProductGraph pg(labeled_path(3), 3);
  const ViewSpec v = fix_low(pg, full_view(pg), 1);
  EXPECT_EQ(v.lo, 2);
  EXPECT_EQ(v.hi, 3);
  for (PNode local = 0; local < 9; ++local) {
    const PNode node = view_node(pg, v, local);
    EXPECT_EQ(pg.digit(node, 1), 1);
    EXPECT_EQ(pg.digit(node, 2), static_cast<NodeId>(local % 3));
    EXPECT_EQ(pg.digit(node, 3), static_cast<NodeId>(local / 3));
  }
}

TEST(ViewTest, AllViewsPartitionTheGraph) {
  const ProductGraph pg(labeled_path(3), 4);
  for (int lo = 1; lo <= 3; ++lo) {
    for (int hi = lo + 1; hi <= 4; ++hi) {
      const auto views = all_views(pg, lo, hi);
      const PNode per_view = view_size(pg, views.front());
      EXPECT_EQ(static_cast<PNode>(views.size()) * per_view, pg.num_nodes());
      std::vector<bool> covered(static_cast<std::size_t>(pg.num_nodes()), false);
      for (const ViewSpec& v : views) {
        for (PNode local = 0; local < per_view; ++local) {
          const PNode node = view_node(pg, v, local);
          EXPECT_FALSE(covered[static_cast<std::size_t>(node)]);
          covered[static_cast<std::size_t>(node)] = true;
        }
      }
      EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                              [](bool b) { return b; }));
    }
  }
}

TEST(ViewTest, NestedFixing) {
  // [u,v]PG^{k,1}: fix the top and bottom dimensions.
  const ProductGraph pg(labeled_path(3), 4);
  ViewSpec v = full_view(pg);
  v = fix_high(pg, v, 2);  // dim 4 = 2
  v = fix_low(pg, v, 1);   // dim 1 = 1
  EXPECT_EQ(v.lo, 2);
  EXPECT_EQ(v.hi, 3);
  for (PNode local = 0; local < view_size(pg, v); ++local) {
    const PNode node = view_node(pg, v, local);
    EXPECT_EQ(pg.digit(node, 4), 2);
    EXPECT_EQ(pg.digit(node, 1), 1);
  }
}

TEST(ViewTest, ShrinkingOneDimensionalViewThrows) {
  const ProductGraph pg(labeled_path(3), 2);
  const ViewSpec one{1, 1, 0};
  EXPECT_THROW((void)fix_low(pg, one, 0), std::invalid_argument);
  EXPECT_THROW((void)fix_high(pg, one, 0), std::invalid_argument);
  EXPECT_THROW((void)all_views(pg, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)all_views(pg, 1, 3), std::invalid_argument);
}

}  // namespace
}  // namespace prodsort
