// Tests for the Figs. 6-11 stage expansion: each stage must satisfy the
// exact structural law the corresponding figure illustrates.

#include "core/merge_stages.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "product/gray_code.hpp"

namespace prodsort {
namespace {

std::vector<std::vector<Key>> random_inputs(std::int64_t n, std::int64_t m,
                                            unsigned seed) {
  std::vector<std::vector<Key>> inputs(static_cast<std::size_t>(n));
  std::mt19937 rng(seed);
  for (auto& seq : inputs) {
    seq.resize(static_cast<std::size_t>(m));
    for (Key& k : seq) k = static_cast<Key>(rng() % 1000);
    std::sort(seq.begin(), seq.end());
  }
  return inputs;
}

TEST(MergeStagesTest, RejectsDegenerateShapes) {
  EXPECT_THROW((void)expand_merge_stages({{1, 2}, {3, 4}}),
               std::invalid_argument);  // k = 2: no stages to show
  EXPECT_THROW((void)expand_merge_stages({{1}}), std::invalid_argument);
}

TEST(MergeStagesTest, RejectsNonPowerLengths) {
  // Regression: m >= N^2 alone is not enough — m = 5 with N = 2 used to
  // read past the merged columns at the interleave step.
  EXPECT_THROW((void)expand_merge_stages({{1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)expand_merge_stages({{1, 2, 3, 4, 5, 6}, {1, 2, 3, 4, 5, 6}}),
      std::invalid_argument);
}

TEST(MergeStagesTest, RejectsRaggedInputs) {
  EXPECT_THROW((void)expand_merge_stages({{1, 2, 3, 4}, {1, 2}}),
               std::invalid_argument);
}

TEST(MergeStagesTest, Fig8SubsequencesFollowTheSnakeColumns) {
  // B_{u,v} = (a_{u,v}, a_{u,2N-v-1}, a_{u,2N+v}, ...), Section 3.1.
  const auto inputs = random_inputs(3, 9, 1);
  const MergeStages s = expand_merge_stages(inputs);
  for (std::int64_t u = 0; u < 3; ++u) {
    for (std::int64_t v = 0; v < 3; ++v) {
      const auto& b = s.b[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
      ASSERT_EQ(b.size(), 3u);
      for (std::int64_t j = 0; j < 3; ++j)
        EXPECT_EQ(b[static_cast<std::size_t>(j)],
                  inputs[static_cast<std::size_t>(u)][static_cast<std::size_t>(
                      subsequence_position(3, static_cast<NodeId>(v), j))]);
      EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
    }
  }
}

TEST(MergeStagesTest, PaperExampleSplit) {
  // Section 3.1's example: A_u = {1..9} -> B = {1,6,7}, {2,5,8}, {3,4,9}.
  const std::vector<std::vector<Key>> inputs(
      3, std::vector<Key>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  const MergeStages s = expand_merge_stages(inputs);
  EXPECT_EQ(s.b[0][0], (std::vector<Key>{1, 6, 7}));
  EXPECT_EQ(s.b[0][1], (std::vector<Key>{2, 5, 8}));
  EXPECT_EQ(s.b[0][2], (std::vector<Key>{3, 4, 9}));
}

TEST(MergeStagesTest, Fig9ColumnsAreSortedAndConserveKeys) {
  const auto inputs = random_inputs(3, 27, 2);
  const MergeStages s = expand_merge_stages(inputs);
  for (std::int64_t v = 0; v < 3; ++v) {
    const auto& c = s.columns[static_cast<std::size_t>(v)];
    EXPECT_EQ(c.size(), 27u);
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    // C_v is the merge of B_{*,v}.
    std::vector<Key> expected;
    for (std::int64_t u = 0; u < 3; ++u) {
      const auto& b = s.b[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
      expected.insert(expected.end(), b.begin(), b.end());
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(c, expected);
  }
}

TEST(MergeStagesTest, Fig10InterleaveLaw) {
  const auto inputs = random_inputs(4, 16, 3);
  const MergeStages s = expand_merge_stages(inputs);
  for (std::int64_t v = 0; v < 4; ++v)
    for (std::int64_t i = 0; i < 16; ++i)
      EXPECT_EQ(s.interleaved[static_cast<std::size_t>(i * 4 + v)],
                s.columns[static_cast<std::size_t>(v)][static_cast<std::size_t>(i)]);
}

TEST(MergeStagesTest, Lemma1DirtySpanWitness) {
  for (unsigned seed = 0; seed < 50; ++seed) {
    const auto inputs = random_inputs(3, 9, seed);
    const MergeStages s = expand_merge_stages(inputs);
    EXPECT_EQ(s.dirty_span, dirty_span(s.interleaved));
    // For 0-1 inputs the bound is N^2; for random keys the *window* can
    // be wider, so just sanity-check the witness is recorded.
    EXPECT_GE(s.dirty_span, 0);
  }
}

TEST(MergeStagesTest, Fig11BlocksAlternateDirections) {
  const auto inputs = random_inputs(3, 27, 5);
  const MergeStages s = expand_merge_stages(inputs);
  for (std::size_t z = 0; z < s.blocks_sorted.size(); ++z) {
    const auto& f = s.blocks_sorted[z];
    const auto& i = s.final_blocks[z];
    if (z % 2 == 0) {
      EXPECT_TRUE(std::is_sorted(f.begin(), f.end()));
      EXPECT_TRUE(std::is_sorted(i.begin(), i.end()));
    } else {
      EXPECT_TRUE(std::is_sorted(f.rbegin(), f.rend()));
      EXPECT_TRUE(std::is_sorted(i.rbegin(), i.rend()));
    }
  }
}

TEST(MergeStagesTest, TranspositionsFormElementwiseMinMax) {
  const auto inputs = random_inputs(3, 9, 6);
  const MergeStages s = expand_merge_stages(inputs);
  // Keys conserved block-pair-wise by the min/max steps.
  std::vector<Key> before;
  std::vector<Key> after;
  for (const auto& blk : s.blocks_sorted)
    before.insert(before.end(), blk.begin(), blk.end());
  for (const auto& blk : s.after_transpositions)
    after.insert(after.end(), blk.begin(), blk.end());
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(MergeStagesTest, ResultMatchesMultiwayMerge) {
  for (const auto& [n, m] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {2, 4}, {2, 16}, {3, 9}, {4, 16}, {5, 25}}) {
    const auto inputs = random_inputs(n, m, static_cast<unsigned>(n * m));
    const MergeStages s = expand_merge_stages(inputs);
    EXPECT_EQ(s.result, multiway_merge(inputs)) << n << "," << m;
    EXPECT_TRUE(std::is_sorted(s.result.begin(), s.result.end()));
  }
}

}  // namespace
}  // namespace prodsort
