#include "network/machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "product/snake_order.hpp"

namespace prodsort {
namespace {

Machine make_machine(const ProductGraph& pg, unsigned seed = 1) {
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  std::mt19937 rng(seed);
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000);
  return Machine(pg, std::move(keys));
}

TEST(MachineTest, RejectsWrongKeyCount) {
  const ProductGraph pg(labeled_path(3), 2);
  EXPECT_THROW(Machine(pg, std::vector<Key>(8)), std::invalid_argument);
}

TEST(MachineTest, CompareExchangeOrdersPairs) {
  const ProductGraph pg(labeled_path(3), 2);
  Machine m(pg, {5, 1, 4, 2, 8, 0, 7, 3, 6});
  const CEPair pairs[] = {{0, 1}, {2, 3}, {4, 5}};
  m.compare_exchange_step(pairs);
  EXPECT_EQ(m.key(0), 1);
  EXPECT_EQ(m.key(1), 5);
  EXPECT_EQ(m.key(2), 2);
  EXPECT_EQ(m.key(3), 4);
  EXPECT_EQ(m.key(4), 0);
  EXPECT_EQ(m.key(5), 8);
  EXPECT_EQ(m.key(6), 7);  // untouched
}

TEST(MachineTest, CompareExchangeRespectsDirection) {
  const ProductGraph pg(labeled_path(3), 2);
  Machine m(pg, {1, 5, 0, 0, 0, 0, 0, 0, 0});
  const CEPair pairs[] = {{1, 0}};  // min must land on node 1
  m.compare_exchange_step(pairs);
  EXPECT_EQ(m.key(1), 1);
  EXPECT_EQ(m.key(0), 5);
}

TEST(MachineTest, CostAccounting) {
  const ProductGraph pg(labeled_path(3), 2);
  Machine m(pg, {5, 1, 4, 2, 8, 0, 7, 3, 6});
  const CEPair pairs[] = {{0, 1}, {2, 3}, {6, 7}};  // keys (5,1),(4,2),(7,3)
  m.compare_exchange_step(pairs, 3);
  EXPECT_EQ(m.cost().exec_steps, 3);
  EXPECT_EQ(m.cost().comparisons, 3);
  EXPECT_EQ(m.cost().exchanges, 3);
  m.compare_exchange_step(pairs, 1);  // now all ordered: no swaps
  EXPECT_EQ(m.cost().exec_steps, 4);
  EXPECT_EQ(m.cost().comparisons, 6);
  EXPECT_EQ(m.cost().exchanges, 3);
}

TEST(MachineTest, DisjointnessValidation) {
  const ProductGraph pg(labeled_path(3), 2);
  Machine m = make_machine(pg);
  m.set_check_disjoint(true);
  const CEPair overlapping[] = {{0, 1}, {1, 2}};
  EXPECT_THROW(m.compare_exchange_step(overlapping), std::logic_error);
  const CEPair degenerate[] = {{3, 3}};
  EXPECT_THROW(m.compare_exchange_step(degenerate), std::logic_error);
  const CEPair fine[] = {{0, 1}, {2, 3}};
  EXPECT_NO_THROW(m.compare_exchange_step(fine));
}

TEST(MachineTest, ReadSnakeFollowsSnakeOrder) {
  const ProductGraph pg(labeled_path(3), 2);
  // Place key = snake rank on every node.
  std::vector<Key> keys(9);
  for (PNode rank = 0; rank < 9; ++rank)
    keys[static_cast<std::size_t>(node_at_snake_rank(pg, rank))] = rank;
  const Machine m(pg, std::move(keys));
  const auto seq = m.read_snake(full_view(pg));
  for (PNode i = 0; i < 9; ++i) EXPECT_EQ(seq[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(m.snake_sorted(full_view(pg)));
  EXPECT_FALSE(m.snake_sorted(full_view(pg), /*descending=*/true));
}

TEST(MachineTest, SnakeSortedOnViews) {
  const ProductGraph pg(labeled_path(3), 3);
  std::vector<Key> keys(27, 0);
  Machine m(pg, std::move(keys));
  EXPECT_TRUE(m.snake_sorted(full_view(pg)));           // constant keys
  for (const ViewSpec& v : all_views(pg, 1, 2))
    EXPECT_TRUE(m.snake_sorted(v));
}

TEST(MachineTest, CostModelAccumulation) {
  CostModel a;
  a.charge_s2_phase(10.0);
  a.charge_routing_phase(3.0);
  a.exec_steps = 5;
  a.comparisons = 7;
  CostModel b;
  b.charge_s2_phase(2.0);
  b.exchanges = 4;
  a += b;
  EXPECT_EQ(a.s2_phases, 2);
  EXPECT_EQ(a.routing_phases, 1);
  EXPECT_DOUBLE_EQ(a.formula_time, 15.0);
  EXPECT_EQ(a.exec_steps, 5);
  EXPECT_EQ(a.comparisons, 7);
  EXPECT_EQ(a.exchanges, 4);
}

TEST(MachineTest, ParallelExecutionIsDeterministic) {
  const ProductGraph pg(labeled_path(4), 3);  // 64 nodes
  std::vector<Key> keys(64);
  std::mt19937 rng(3);
  for (Key& k : keys) k = static_cast<Key>(rng());

  // Build a few disjoint random pair phases.
  std::vector<std::vector<CEPair>> phases;
  for (int p = 0; p < 10; ++p) {
    std::vector<PNode> nodes(64);
    std::iota(nodes.begin(), nodes.end(), 0);
    std::shuffle(nodes.begin(), nodes.end(), rng);
    std::vector<CEPair> pairs;
    for (std::size_t i = 0; i + 1 < nodes.size(); i += 2)
      pairs.push_back({nodes[i], nodes[i + 1]});
    phases.push_back(std::move(pairs));
  }

  Machine serial(pg, keys);
  for (const auto& pairs : phases) serial.compare_exchange_step(pairs);

  for (int threads : {2, 4, 8}) {
    ParallelExecutor exec(threads);
    Machine parallel(pg, keys, &exec);
    for (const auto& pairs : phases) parallel.compare_exchange_step(pairs);
    EXPECT_TRUE(std::equal(serial.keys().begin(), serial.keys().end(),
                           parallel.keys().begin()));
    EXPECT_EQ(serial.cost().exchanges, parallel.cost().exchanges);
  }
}

}  // namespace
}  // namespace prodsort
