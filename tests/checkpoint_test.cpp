#include "network/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/product_sort.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "network/fault_model.hpp"
#include "product/snake_order.hpp"

namespace prodsort {
namespace {

std::vector<Key> random_keys(PNode count, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<Key> keys(static_cast<std::size_t>(count));
  for (Key& k : keys) k = static_cast<Key>(rng() % 100000);
  return keys;
}

/// Passive observer that just counts callbacks — stands in for an
/// auditor already installed when the CheckpointManager chains in.
class CountingObserver final : public PhaseObserver {
 public:
  void before_phase(std::span<const Key>, std::span<const CEPair>, int, int,
                    bool) override {
    ++before;
  }
  void after_phase(std::span<const Key>) override { ++after; }
  int before = 0;
  int after = 0;
};

TEST(CheckpointTest, AttachSnapshotsAndChargesOneDilationPhase) {
  const ProductGraph pg(labeled_path(3), 2);
  Machine m(pg, random_keys(pg.num_nodes(), 1));
  CheckpointManager manager({.interval = 4, .snapshot_on_attach = true});
  manager.attach(m);
  EXPECT_TRUE(manager.has_checkpoint());
  EXPECT_EQ(manager.generation(), 1);
  EXPECT_EQ(m.cost().checkpoints, 1);
  EXPECT_EQ(m.cost().checkpoint_steps, pg.factor().dilation);
  EXPECT_EQ(m.cost().exec_steps, pg.factor().dilation);
  manager.detach();
  EXPECT_EQ(m.observer(), nullptr);
}

TEST(CheckpointTest, PeriodicSnapshotsFollowTheInterval) {
  const ProductGraph pg(labeled_path(3), 2);
  Machine m(pg, random_keys(pg.num_nodes(), 2));
  CheckpointManager manager({.interval = 2, .snapshot_on_attach = true});
  manager.attach(m);
  const SnakeOETS2 oet;
  SortOptions options;
  options.s2 = &oet;
  (void)sort_product_network(m, options);
  // Baseline snapshot plus one per two synchronous phases.
  EXPECT_GT(manager.generation(), 1);
  EXPECT_EQ(m.cost().checkpoints, manager.generation());
  manager.detach();

  // interval = 0 disables periodic snapshots entirely.
  Machine m2(pg, random_keys(pg.num_nodes(), 2));
  CheckpointManager manual({.interval = 0, .snapshot_on_attach = false});
  manual.attach(m2);
  (void)sort_product_network(m2, options);
  EXPECT_EQ(manual.generation(), 0);
  EXPECT_FALSE(manual.has_checkpoint());
  EXPECT_THROW(manual.restore(), std::logic_error);
}

TEST(CheckpointTest, ChainsThePreviouslyInstalledObserver) {
  const ProductGraph pg(labeled_path(3), 2);
  Machine m(pg, random_keys(pg.num_nodes(), 3));
  CountingObserver counter;
  m.set_observer(&counter);
  {
    CheckpointManager manager({.interval = 8, .snapshot_on_attach = true});
    manager.attach(m);
    EXPECT_FALSE(manager.supersedes_validation());
    const SnakeOETS2 oet;
    SortOptions options;
    options.s2 = &oet;
    (void)sort_product_network(m, options);
    EXPECT_GT(counter.before, 0);  // chained callbacks kept firing
    EXPECT_EQ(counter.before, counter.after);
  }  // destructor detaches
  EXPECT_EQ(m.observer(), &counter);
}

TEST(CheckpointTest, DoubleAttachThrows) {
  const ProductGraph pg(labeled_path(2), 2);
  Machine a(pg, random_keys(pg.num_nodes(), 4));
  Machine b(pg, random_keys(pg.num_nodes(), 5));
  CheckpointManager manager;
  manager.attach(a);
  EXPECT_THROW(manager.attach(b), std::logic_error);
  EXPECT_THROW(CheckpointManager({.interval = -1}), std::invalid_argument);
}

TEST(CheckpointTest, ShadowHolderIsASnakeNeighbor) {
  const ProductGraph pg(labeled_path(3), 2);
  Machine m(pg, random_keys(pg.num_nodes(), 6));
  CheckpointManager manager;
  manager.attach(m);
  for (PNode v = 0; v < pg.num_nodes(); ++v) {
    const PNode holder = manager.shadow_holder(v);
    EXPECT_NE(holder, v);
    const PNode rank = snake_rank(pg, v);
    const PNode expected_rank =
        rank + 1 < pg.num_nodes() ? rank + 1 : rank - 1;
    EXPECT_EQ(snake_rank(pg, holder), expected_rank);
    // Snake-consecutive nodes are Gray-code neighbors: one product edge.
    const std::vector<PNode> nbrs = pg.neighbors(v);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), holder), nbrs.end());
  }
}

TEST(CheckpointTest, RestoreRewindsTheMachineToTheSnapshot) {
  const ProductGraph pg(labeled_path(3), 2);
  const auto keys = random_keys(pg.num_nodes(), 7);
  Machine m(pg, keys);
  CheckpointManager manager({.interval = 0, .snapshot_on_attach = true});
  manager.attach(m);

  const SnakeOETS2 oet;
  SortOptions options;
  options.s2 = &oet;
  (void)sort_product_network(m, options);  // scrambles away from `keys`
  ASSERT_FALSE(std::equal(keys.begin(), keys.end(), m.keys().begin()));

  const CheckpointManager::RestoreResult result = manager.restore();
  EXPECT_TRUE(result.from_shadow.empty());
  EXPECT_TRUE(result.orphans.empty());
  EXPECT_TRUE(result.lost.empty());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), m.keys().begin()));
  EXPECT_GT(m.cost().recovery_steps, 0);
}

TEST(CheckpointTest, CrashedPrimaryRestoresFromItsShadow) {
  const ProductGraph pg(labeled_path(3), 2);
  const auto keys = random_keys(pg.num_nodes(), 8);
  Machine m(pg, keys);
  CheckpointManager manager({.interval = 0, .snapshot_on_attach = true});
  manager.attach(m);

  const PNode victim = node_at_snake_rank(pg, 3);
  manager.note_crash(victim);
  const auto result = manager.restore();
  ASSERT_EQ(result.from_shadow.size(), 1u);
  EXPECT_EQ(result.from_shadow.front(), victim);
  EXPECT_TRUE(result.lost.empty());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), m.keys().begin()));

  EXPECT_THROW(manager.note_crash(-1), std::invalid_argument);
  EXPECT_THROW(manager.note_crash(pg.num_nodes()), std::invalid_argument);
}

TEST(CheckpointTest, PrimaryAndShadowBothWipedIsLost) {
  const ProductGraph pg(labeled_path(3), 2);
  const auto keys = random_keys(pg.num_nodes(), 9);
  Machine m(pg, keys);
  CheckpointManager manager({.interval = 0, .snapshot_on_attach = true});
  manager.attach(m);

  const PNode victim = node_at_snake_rank(pg, 3);
  manager.note_crash(victim);
  manager.note_crash(manager.shadow_holder(victim));
  const auto result = manager.restore();
  ASSERT_EQ(result.lost.size(), 1u);
  EXPECT_EQ(result.lost.front(), victim);

  // A fresh snapshot clears the wiped marks: nothing is lost anymore.
  manager.snapshot_now();
  EXPECT_TRUE(manager.restore().lost.empty());
}

TEST(CheckpointTest, DeadNodeEntriesComeBackAsOrphans) {
  const ProductGraph pg(labeled_path(3), 2);
  const auto keys = random_keys(pg.num_nodes(), 10);
  Machine m(pg, keys);
  FaultModel fm{FaultConfig{}};
  m.set_fault_model(&fm);
  CheckpointManager manager({.interval = 0, .snapshot_on_attach = true});
  manager.attach(m);

  const PNode victim = node_at_snake_rank(pg, 5);
  fm.kill(victim);
  const auto result = manager.restore();
  ASSERT_EQ(result.orphans.size(), 1u);
  EXPECT_EQ(result.orphans.front().first, victim);
  EXPECT_EQ(result.orphans.front().second,
            keys[static_cast<std::size_t>(victim)]);
  EXPECT_TRUE(result.lost.empty());

  // No snapshot may be taken while a node is dead.
  EXPECT_THROW(manager.snapshot_now(), std::logic_error);
  fm.restart(victim);
  EXPECT_NO_THROW(manager.snapshot_now());
}

TEST(CheckpointTest, BlockMachineRoundTrips) {
  const ProductGraph pg(labeled_path(2), 2);
  const int block = 4;
  const auto keys = random_keys(pg.num_nodes() * block, 11);
  BlockMachine m(pg, keys, block);
  CheckpointManager manager({.interval = 0, .snapshot_on_attach = true});
  manager.attach(m);
  EXPECT_EQ(m.cost().checkpoints, 1);

  // AUDITOR-EXEMPT(test scrambles the array to prove restore rewinds it).
  std::span<Key> live = m.mutable_keys();
  std::reverse(live.begin(), live.end());
  ASSERT_FALSE(std::equal(keys.begin(), keys.end(), m.keys().begin()));
  (void)manager.restore();
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), m.keys().begin()));
  EXPECT_GT(m.cost().recovery_steps, 0);
}

}  // namespace
}  // namespace prodsort
