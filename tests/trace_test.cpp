// The phase-schedule trace: the driver's timeline must be exactly the
// Lemma 3 / Theorem 1 schedule, level by level.

#include <gtest/gtest.h>

#include <random>

#include "core/product_sort.hpp"
#include "product/snake_order.hpp"

namespace prodsort {
namespace {

std::vector<PhaseRecord> trace_sort(const LabeledFactor& f, int r) {
  const ProductGraph pg(f, r);
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  std::mt19937 rng(1);
  for (Key& k : keys) k = static_cast<Key>(rng() % 100);
  Machine m(pg, std::move(keys));
  std::vector<PhaseRecord> trace;
  SortOptions options;
  options.trace = &trace;
  (void)sort_product_network(m, options);
  return trace;
}

TEST(TraceTest, PhaseCountsMatchTheorem1) {
  for (const int r : {2, 3, 4, 5}) {
    const auto trace = trace_sort(labeled_path(3), r);
    std::int64_t s2 = 0, routing = 0;
    for (const PhaseRecord& p : trace) {
      if (p.kind == PhaseRecord::Kind::kS2Sort) ++s2;
      else ++routing;
    }
    EXPECT_EQ(s2, static_cast<std::int64_t>(r - 1) * (r - 1)) << r;
    EXPECT_EQ(routing, static_cast<std::int64_t>(r - 1) * (r - 2)) << r;
    EXPECT_EQ(trace.size(), static_cast<std::size_t>(s2 + routing));
  }
}

TEST(TraceTest, ScheduleShapeForThreeDimensions) {
  // r = 3: initial S2(1,2); merge(1,3) = S2(2,3) [step 2 base],
  // S2(1,2-blocks), T, T, S2(1,2-blocks).
  const auto trace = trace_sort(labeled_path(3), 3);
  ASSERT_EQ(trace.size(), 6u);
  using K = PhaseRecord::Kind;
  EXPECT_EQ(trace[0].kind, K::kS2Sort);
  EXPECT_EQ(trace[0].lo, 1);
  EXPECT_EQ(trace[0].hi, 2);
  EXPECT_EQ(trace[1].kind, K::kS2Sort);  // step-2 base case on dims {2,3}
  EXPECT_EQ(trace[1].lo, 2);
  EXPECT_EQ(trace[1].hi, 3);
  EXPECT_EQ(trace[2].kind, K::kS2Sort);  // step-4 first block sorts
  EXPECT_EQ(trace[2].lo, 1);
  EXPECT_EQ(trace[2].hi, 3);
  EXPECT_EQ(trace[3].kind, K::kTransposition);
  EXPECT_EQ(trace[4].kind, K::kTransposition);
  EXPECT_EQ(trace[5].kind, K::kS2Sort);  // step-4 final block sorts
}

TEST(TraceTest, WeightsMatchTheFactorCosts) {
  const LabeledFactor f = labeled_cycle(5);  // S2 = 12.5, R = 2.5
  const auto trace = trace_sort(f, 4);
  double total = 0;
  for (const PhaseRecord& p : trace) {
    if (p.kind == PhaseRecord::Kind::kS2Sort)
      EXPECT_DOUBLE_EQ(p.weight, 12.5);
    else
      EXPECT_DOUBLE_EQ(p.weight, 2.5);
    total += p.weight;
  }
  EXPECT_DOUBLE_EQ(total, theorem1(f, 4).formula_time);
}

TEST(TraceTest, UnitsCoverTheMachine) {
  // Every S2 phase's views partition the node set: units * N^2 = N^r.
  const auto trace = trace_sort(labeled_path(4), 4);
  for (const PhaseRecord& p : trace) {
    if (p.kind == PhaseRecord::Kind::kS2Sort)
      EXPECT_EQ(p.units * 16, 256u);
    else
      // Transpositions pair (nblocks-1)/2-ish blocks of N^2 nodes across
      // all views; units is the pair count, bounded by half the machine.
      EXPECT_LE(p.units, 128u);
  }
}

TEST(TraceTest, LevelsAppearInAscendingOrder) {
  const auto trace = trace_sort(labeled_path(3), 5);
  int max_hi = 0;
  for (const PhaseRecord& p : trace) {
    EXPECT_GE(p.hi, max_hi - 0);  // hi never regresses below prior levels
    max_hi = std::max(max_hi, p.hi);
  }
  EXPECT_EQ(max_hi, 5);
}

}  // namespace
}  // namespace prodsort
