#include "analysis/step_auditor.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "analysis/packet_audit.hpp"
#include "core/block_sort.hpp"
#include "core/product_sort.hpp"
#include "core/s2/network_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "network/block_machine.hpp"
#include "network/fault_model.hpp"
#include "network/machine.hpp"
#include "network/packet_sim.hpp"
#include "network/parallel_executor.hpp"
#include "product/subgraph_view.hpp"
#include "sortnet/batcher.hpp"

namespace prodsort {
namespace {

std::vector<Key> iota_keys(PNode count) {
  std::vector<Key> keys(static_cast<std::size_t>(count));
  for (PNode i = 0; i < count; ++i)
    keys[static_cast<std::size_t>(i)] = count - i;  // reversed, all distinct
  return keys;
}

// path(3)^2: a 3x3 grid, nodes 0..8, digit d of node v = (v / 3^(d-1)) % 3.
ProductGraph grid3() { return ProductGraph(labeled_path(3), 2); }

ViolationKind only_kind(const StepAuditor& auditor) {
  EXPECT_EQ(auditor.violation_count(), 1);
  EXPECT_FALSE(auditor.violations().empty());
  return auditor.violations().front().kind;
}

// ---------------------------------------------------------------- negative

TEST(StepAuditorTest, FlagsOverlappingPair) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.throw_on_violation = false;
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  // Node 1 appears in two pairs of the same phase.
  const CEPair pairs[] = {{0, 1}, {1, 2}};
  m.compare_exchange_step(pairs);
  EXPECT_EQ(only_kind(auditor), ViolationKind::kOverlappingPair);
  EXPECT_EQ(auditor.violations().front().node, 1);
  EXPECT_FALSE(auditor.clean());
}

TEST(StepAuditorTest, FlagsDegeneratePair) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.throw_on_violation = false;
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  const CEPair pairs[] = {{4, 4}};
  m.compare_exchange_step(pairs);
  EXPECT_EQ(only_kind(auditor), ViolationKind::kDegeneratePair);
}

TEST(StepAuditorTest, FlagsWrongDimensionPartner) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.throw_on_violation = false;
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  // 0 = (0,0) and 4 = (1,1): differ in BOTH dimensions — a diagonal
  // "comparison" the synchronous machine must never issue.
  const CEPair pairs[] = {{0, 4}};
  m.compare_exchange_step(pairs, /*hop_distance=*/2);
  EXPECT_EQ(only_kind(auditor), ViolationKind::kWrongDimension);
}

TEST(StepAuditorTest, FlagsUnderchargedHop) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.throw_on_violation = false;
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  // 0 = (0,0) and 6 = (0,2): same dimension, factor distance 2 on the
  // path — charging hop 1 undercharges exec_steps.
  const CEPair pairs[] = {{0, 6}};
  m.compare_exchange_step(pairs, /*hop_distance=*/1);
  EXPECT_EQ(only_kind(auditor), ViolationKind::kUnderchargedHop);
  EXPECT_EQ(auditor.violations().front().expected, 2);
  EXPECT_EQ(auditor.violations().front().observed, 1);
}

TEST(StepAuditorTest, CrossDimensionModeStillEnforcesCostHonesty) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.throw_on_violation = false;
  config.allow_cross_dimension = true;
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  // 0 = (0,0) and 8 = (2,2): product distance 4.  Charging 4 is legal
  // in cross-dimension mode; charging 3 is not.
  const CEPair ok[] = {{0, 8}};
  m.compare_exchange_step(ok, /*hop_distance=*/4);
  EXPECT_TRUE(auditor.clean());
  m.compare_exchange_step(ok, /*hop_distance=*/3);
  EXPECT_EQ(only_kind(auditor), ViolationKind::kUnderchargedHop);
}

TEST(StepAuditorTest, FlagsMemoryDisciplineWhenDisjointnessOff) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.throw_on_violation = false;
  config.check_disjoint = false;  // memory check reports the overlap
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  const CEPair pairs[] = {{0, 1}, {1, 2}};
  m.compare_exchange_step(pairs);
  EXPECT_EQ(only_kind(auditor), ViolationKind::kMemoryDiscipline);
  EXPECT_GE(auditor.stats().max_resident_values, 3);
}

TEST(StepAuditorTest, ThrowsOnViolationByDefault) {
  const ProductGraph pg = grid3();
  StepAuditor auditor(pg);  // throw_on_violation defaults to true
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  const CEPair pairs[] = {{0, 1}, {1, 2}};
  EXPECT_THROW(m.compare_exchange_step(pairs), std::logic_error);
}

TEST(StepAuditorTest, RejectsOutOfRangeEndpoints) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.throw_on_violation = false;  // range errors throw regardless
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  const CEPair pairs[] = {{0, 9}};
  EXPECT_THROW(m.compare_exchange_step(pairs), std::logic_error);
}

// The race detector itself: feed lockstep_compare a fabricated "after"
// image simulating a lost update, and require a divergence report that
// names the overlapping write set.  (Real parallel divergence is
// nondeterministic, so the negative test drives the comparator
// directly; the integration tests below prove no false positives.)
TEST(StepAuditorTest, LockstepCompareDetectsLostUpdate) {
  const ProductGraph pg = grid3();
  StepAuditor auditor(pg);
  const std::vector<Key> before = {5, 1, 4, 2, 8, 0, 7, 3, 6};
  const std::vector<CEPair> pairs = {{0, 1}, {1, 2}};  // 1 written twice
  // Serial replay: (0,1) swaps 5,1 -> 1,5; (1,2) swaps 5,4 -> 4,5,
  // leaving {1, 4, 5, ...}.  A racing run where (1,2) read node 1
  // before (0,1) wrote it keeps 1 there and drops the 5 entirely —
  // fabricate that lost-update image {1, 1, 4, ...}.
  std::vector<Key> after = before;
  after[0] = 1;
  after[1] = 1;
  after[2] = 4;
  const auto divergence =
      auditor.lockstep_compare(before, pairs, /*block_size=*/1, after);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->kind, ViolationKind::kLockstepDivergence);
  EXPECT_EQ(divergence->observed, 1);  // one node written twice
  EXPECT_NE(divergence->message.find("write-set overlap: 1"),
            std::string::npos);
}

TEST(StepAuditorTest, LockstepCompareAcceptsCorrectResult) {
  const ProductGraph pg = grid3();
  StepAuditor auditor(pg);
  const std::vector<Key> before = {5, 1, 4, 2, 8, 0, 7, 3, 6};
  const std::vector<CEPair> pairs = {{0, 1}, {2, 3}};
  std::vector<Key> after = {1, 5, 2, 4, 8, 0, 7, 3, 6};
  EXPECT_FALSE(
      auditor.lockstep_compare(before, pairs, /*block_size=*/1, after)
          .has_value());
}

TEST(StepAuditorTest, LockstepCompareReplaysMergeSplit) {
  const ProductGraph pg = grid3();
  StepAuditor auditor(pg);
  // block_size 2: pair (0,1) merge-splits {7,9} and {2,4} into {2,4},{7,9}.
  const std::vector<Key> before = {7, 9, 2, 4};
  const std::vector<CEPair> pairs = {{0, 1}};
  const std::vector<Key> good = {2, 4, 7, 9};
  EXPECT_FALSE(auditor.lockstep_compare(before, pairs, /*block_size=*/2, good)
                   .has_value());
  const std::vector<Key> bad = {2, 7, 4, 9};
  EXPECT_TRUE(auditor.lockstep_compare(before, pairs, /*block_size=*/2, bad)
                  .has_value());
}

// ---------------------------------------------------------------- positive

TEST(StepAuditorTest, ProductSortRunsCleanUnderFullAudit) {
  const ProductGraph pg(labeled_path(4), 3);
  AuditorConfig config;
  config.check_lockstep = true;
  StepAuditor auditor(pg, config);  // throwing: any violation fails here
  ParallelExecutor exec(4);
  std::mt19937 rng(7);
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000);
  Machine m(pg, std::move(keys), &exec);
  m.set_observer(&auditor);
  const ShearsortS2 s2;
  SortOptions options;
  options.s2 = &s2;
  (void)sort_product_network(m, options);
  EXPECT_TRUE(m.snake_sorted(full_view(pg)));
  EXPECT_TRUE(auditor.clean());
  EXPECT_GT(auditor.stats().phases, 0);
  EXPECT_GT(auditor.stats().pairs, 0);
  EXPECT_EQ(auditor.stats().lockstep_replays, auditor.stats().phases);
  // Section 4 memory discipline: own value + one partner value, never more.
  EXPECT_LE(auditor.stats().max_resident_values, 2);
}

TEST(StepAuditorTest, NetworkS2RunsCleanInCrossDimensionMode) {
  const ProductGraph pg(labeled_k2(), 2);
  AuditorConfig config;
  config.allow_cross_dimension = true;
  config.check_lockstep = true;
  StepAuditor auditor(pg, config);
  Machine m(pg, {3, 1, 2, 0});
  m.set_observer(&auditor);
  const NetworkS2 s2(odd_even_merge_sort_network(4));
  SortOptions options;
  options.s2 = &s2;
  (void)sort_product_network(m, options);
  EXPECT_TRUE(m.snake_sorted(full_view(pg)));
  EXPECT_TRUE(auditor.clean());
}

TEST(StepAuditorTest, BlockSortRunsCleanUnderFullAudit) {
  const ProductGraph pg(labeled_cycle(4), 2);
  AuditorConfig config;
  config.check_lockstep = true;
  StepAuditor auditor(pg, config);
  const int block = 4;
  std::mt19937 rng(11);
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()) * block);
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000);
  BlockMachine m(pg, std::move(keys), block);
  m.set_observer(&auditor);
  const BlockShearsortS2 s2;
  BlockSortOptions options;
  options.s2 = &s2;
  (void)sort_block_network(m, options);
  EXPECT_TRUE(m.snake_sorted(full_view(pg)));
  EXPECT_TRUE(auditor.clean());
  EXPECT_LE(auditor.stats().max_resident_values, 2);
}

TEST(StepAuditorTest, ObserverSupersedesMachineDisjointCheck) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.check_disjoint = false;
  config.check_memory = false;
  config.throw_on_violation = false;
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_check_disjoint(true);  // would throw without an observer...
  m.set_observer(&auditor);    // ...but the observer owns the check now
  const CEPair pairs[] = {{0, 1}, {1, 2}};
  EXPECT_NO_THROW(m.compare_exchange_step(pairs));
}

TEST(StepAuditorTest, SkipsLockstepReplayOnFaultyPhases) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.check_lockstep = true;
  StepAuditor auditor(pg, config);
  FaultConfig fc;
  fc.ce_drop_rate = 1.0;  // every pair dropped: replay cannot reproduce
  FaultModel faults(fc);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_fault_model(&faults);
  m.set_observer(&auditor);
  const CEPair pairs[] = {{0, 1}, {2, 5}};
  EXPECT_NO_THROW(m.compare_exchange_step(pairs));
  EXPECT_EQ(auditor.stats().faulty_phases, 1);
  EXPECT_EQ(auditor.stats().lockstep_replays, 0);
  EXPECT_TRUE(auditor.clean());
}

TEST(StepAuditorTest, CountsReplaySkipsAsLostCoverage) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.check_lockstep = true;
  StepAuditor auditor(pg, config);
  FaultConfig fc;
  fc.ce_drop_rate = 1.0;  // every phase perturbed
  FaultModel faults(fc);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_fault_model(&faults);
  m.set_observer(&auditor);
  const CEPair pairs[] = {{0, 1}, {2, 5}};
  m.compare_exchange_step(pairs);
  m.compare_exchange_step(pairs);
  // Each skipped replay is lost audit coverage, counted so chaos runs
  // report the blind spot instead of silently under-auditing.
  EXPECT_EQ(auditor.stats().faulty_phases, 2);
  EXPECT_EQ(auditor.stats().replay_skipped, 2);

  // Without check_lockstep there is no replay to lose: the counter must
  // stay zero even though the phases are still flagged faulty.
  StepAuditor watcher(pg, AuditorConfig{});
  Machine m2(pg, iota_keys(pg.num_nodes()));
  m2.set_fault_model(&faults);
  m2.set_observer(&watcher);
  m2.compare_exchange_step(pairs);
  EXPECT_EQ(watcher.stats().faulty_phases, 1);
  EXPECT_EQ(watcher.stats().replay_skipped, 0);
}

TEST(StepAuditorTest, ResetForgetsViolationsAndStats) {
  const ProductGraph pg = grid3();
  AuditorConfig config;
  config.throw_on_violation = false;
  StepAuditor auditor(pg, config);
  Machine m(pg, iota_keys(pg.num_nodes()));
  m.set_observer(&auditor);
  const CEPair pairs[] = {{0, 1}, {1, 2}};
  m.compare_exchange_step(pairs);
  EXPECT_FALSE(auditor.clean());
  auditor.reset();
  EXPECT_TRUE(auditor.clean());
  EXPECT_EQ(auditor.stats().phases, 0);
  const CEPair ok[] = {{0, 1}};
  m.compare_exchange_step(ok);
  EXPECT_TRUE(auditor.clean());
}

// ------------------------------------------------------------ packet audit

TEST(PacketAuditTest, AcceptsRealSimulation) {
  const LabeledFactor factor = labeled_cycle(5);
  std::vector<NodeId> dest = {3, 0, 4, 1, 2};
  const PacketStats stats = simulate_permutation(factor.graph, dest);
  const PacketAuditReport report =
      audit_permutation_stats(factor.graph, dest, stats);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_GE(stats.steps, report.steps_lower_bound);
  EXPECT_GE(stats.total_hops, report.hops_lower_bound);
}

TEST(PacketAuditTest, RejectsUnderchargedStats) {
  const LabeledFactor factor = labeled_cycle(5);
  std::vector<NodeId> dest = {3, 0, 4, 1, 2};
  PacketStats stats = simulate_permutation(factor.graph, dest);
  stats.total_hops = 1;  // impossible: below the shortest-path total
  const PacketAuditReport report =
      audit_permutation_stats(factor.graph, dest, stats);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.message.empty());
}

TEST(PacketAuditTest, ProductAuditAcceptsDimensionOrderRouting) {
  const ProductGraph pg(labeled_path(3), 2);
  std::vector<PNode> dest(static_cast<std::size_t>(pg.num_nodes()));
  for (PNode v = 0; v < pg.num_nodes(); ++v)
    dest[static_cast<std::size_t>(v)] = pg.num_nodes() - 1 - v;
  const PacketStats stats = simulate_product_permutation(pg, dest);
  const PacketAuditReport report =
      audit_product_permutation_stats(pg, dest, stats);
  EXPECT_TRUE(report.ok) << report.message;
}

}  // namespace
}  // namespace prodsort
