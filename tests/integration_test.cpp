// End-to-end scenarios: the full pipeline (factor -> product -> machine ->
// sort) on the paper's flagship networks, cross-checked between the
// network implementation, the sequence-level algorithm, the executable
// sorters, and std::sort, with cost predictions verified.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/product_sort.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "core/sequence_sort.hpp"
#include "product/snake_order.hpp"

namespace prodsort {
namespace {

std::vector<Key> random_keys(PNode count, unsigned seed) {
  std::vector<Key> keys(static_cast<std::size_t>(count));
  std::mt19937_64 rng(seed);
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000003);
  return keys;
}

struct Scenario {
  const char* label;
  LabeledFactor factor;
  int r;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"grid 4^3 (Section 5.1)", labeled_path(4), 3});
  out.push_back({"torus 4^3 (Corollary)", labeled_cycle(4), 3});
  out.push_back({"MCT 7^2 (Section 5.2)", labeled_binary_tree(3), 2});
  out.push_back({"hypercube 2^7 (Section 5.3)", labeled_k2(), 7});
  out.push_back({"Petersen cube 10^2 (Section 5.4)", labeled_petersen(), 2});
  out.push_back({"de Bruijn product 8^2 (Section 5.5)", labeled_de_bruijn(3), 2});
  out.push_back({"shuffle-exchange product 8^2", labeled_shuffle_exchange(3), 2});
  return out;
}

TEST(IntegrationTest, FullPipelineOnFlagshipNetworks) {
  ParallelExecutor exec(4);
  for (const Scenario& s : scenarios()) {
    const ProductGraph pg(s.factor, s.r);
    const auto keys = random_keys(pg.num_nodes(), 101);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());

    Machine m(pg, keys, &exec);
    const SortReport report = sort_product_network(m);

    EXPECT_EQ(m.read_snake(full_view(pg)), expected) << s.label;
    EXPECT_EQ(report.cost.s2_phases, report.predicted.s2_phases) << s.label;
    EXPECT_EQ(report.cost.routing_phases, report.predicted.routing_phases)
        << s.label;
    EXPECT_DOUBLE_EQ(report.cost.formula_time, report.predicted.formula_time)
        << s.label;
  }
}

TEST(IntegrationTest, ExecutableSortersAgreeWithOracle) {
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  for (const Scenario& s : scenarios()) {
    const ProductGraph pg(s.factor, s.r);
    if (pg.num_nodes() > 700) continue;  // executable runs are slower
    const auto keys = random_keys(pg.num_nodes(), 103);

    Machine oracle_run(pg, keys);
    (void)sort_product_network(oracle_run);

    for (const S2Sorter* sorter : {static_cast<const S2Sorter*>(&shear),
                                   static_cast<const S2Sorter*>(&oet)}) {
      Machine exec_run(pg, keys);
      SortOptions options;
      options.s2 = sorter;
      (void)sort_product_network(exec_run, options);
      EXPECT_TRUE(std::equal(oracle_run.keys().begin(),
                             oracle_run.keys().end(), exec_run.keys().begin()))
          << s.label << " / " << sorter->name();
    }
  }
}

TEST(IntegrationTest, NetworkMatchesSequenceAlgorithmEverywhere) {
  for (const Scenario& s : scenarios()) {
    const ProductGraph pg(s.factor, s.r);
    const auto keys = random_keys(pg.num_nodes(), 107);

    Machine m(pg, keys);
    (void)sort_product_network(m);

    std::vector<Key> seq(static_cast<std::size_t>(pg.num_nodes()));
    for (PNode rank = 0; rank < pg.num_nodes(); ++rank)
      seq[static_cast<std::size_t>(rank)] =
          keys[static_cast<std::size_t>(node_at_snake_rank(pg, rank))];
    (void)multiway_merge_sort(seq, pg.radix());

    EXPECT_EQ(m.read_snake(full_view(pg)), seq) << s.label;
  }
}

TEST(IntegrationTest, HypercubeCostMatchesBatcherOrder) {
  // Section 5.3: O(r^2) with our constants 3(r-1)^2 + (r-1)(r-2).
  for (const int r : {3, 5, 8, 10}) {
    const ProductGraph pg(labeled_k2(), r);
    Machine m(pg, random_keys(pg.num_nodes(), 109));
    const SortReport report = sort_product_network(m);
    EXPECT_DOUBLE_EQ(report.cost.formula_time,
                     3.0 * (r - 1) * (r - 1) + (r - 1) * (r - 2));
  }
}

TEST(IntegrationTest, StableAcrossRepeatedRuns) {
  // Sorting an already-sorted machine is a no-op on the keys.
  const ProductGraph pg(labeled_path(3), 3);
  Machine m(pg, random_keys(pg.num_nodes(), 113));
  (void)sort_product_network(m);
  const std::vector<Key> once(m.keys().begin(), m.keys().end());
  (void)sort_product_network(m);
  EXPECT_TRUE(std::equal(once.begin(), once.end(), m.keys().begin()));
}

TEST(IntegrationTest, LargeGridWithParallelExecutor) {
  // 4^6 = 4096 processors, oracle sorter, 4 worker threads.
  const ProductGraph pg(labeled_path(4), 6);
  const auto keys = random_keys(pg.num_nodes(), 127);
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());

  ParallelExecutor exec(4);
  Machine m(pg, keys, &exec);
  const SortReport report = sort_product_network(m);
  EXPECT_EQ(m.read_snake(full_view(pg)), expected);
  EXPECT_EQ(report.cost.s2_phases, 25);      // (6-1)^2
  EXPECT_EQ(report.cost.routing_phases, 20); // (6-1)(6-2)
}

}  // namespace
}  // namespace prodsort
