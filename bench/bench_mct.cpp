// Experiment E7 (Section 5.2, mesh-connected trees): products of complete
// binary trees sort in O(r^2 N) via the Corollary's torus emulation
// (S2 = 15N, R = 3N here), which is O(N) and bisection-optimal for
// bounded r.  The table sweeps tree sizes and dimensions and reports the
// measured time, the O(N) trend at fixed r, and the Sekanina labeling
// quality (dilation <= 3) the emulation rests on.

#include <cstdio>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E7: mesh-connected trees (Section 5.2) — O(r^2 N), optimal"
              " O(N) for bounded r\n\n");

  Table table({"levels", "N", "r", "keys", "dilation", "measured",
               "measured/N", "18(r-1)^2N"});
  for (const int r : {2, 3}) {
    for (const int levels : {2, 3, 4, 5}) {
      const LabeledFactor f = labeled_binary_tree(levels);
      const ProductGraph pg(f, r);
      if (pg.num_nodes() > 200000) continue;
      Machine m(pg, bench::random_keys(pg.num_nodes(), 5u));
      const SortReport report = sort_product_network(m);
      table.add_row({fmt(levels), fmt(f.size()), fmt(r), fmt(pg.num_nodes()),
                     fmt(f.dilation), fmt(report.cost.formula_time),
                     bench::fmt(report.cost.formula_time / f.size()),
                     fmt(corollary_bound(f.size(), r))});
    }
  }
  table.print();
  table.maybe_export_csv("mct");
  std::printf("\nFixed r: measured/N is constant -> O(N); the 2-D MCT has"
              " bisection O(N), so this is optimal (Section 5.2).\n");
  return 0;
}
