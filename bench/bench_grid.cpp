// Experiment E6 (Section 5.1, grids): S_r(N) = 4(r-1)^2 N + o(r^2 N) with
// Schnorr-Shamir S2 = 3N and linear-array routing R = N-1; asymptotically
// optimal O(N) for bounded r (diameter argument).  The table sweeps N and
// r, comparing the measured time to the 4(r-1)^2 N headline and to the
// diameter lower bound r(N-1); the last columns give the executable
// shearsort-mode step count for one mid-size instance and the trend.

#include <cstdio>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E6: grids (Section 5.1) — 4(r-1)^2 N + o(r^2 N), optimal for"
              " bounded r\n\n");

  Table table({"N", "r", "keys", "measured", "4(r-1)^2N", "ratio",
               "diam bound r(N-1)", "measured/diam"});
  for (const int r : {2, 3, 4}) {
    for (const NodeId n : {4, 8, 16, 32}) {
      const ProductGraph pg(labeled_path(n), r);
      if (pg.num_nodes() > 1100000) continue;
      Machine m(pg, bench::random_keys(pg.num_nodes(), 3u));
      const SortReport report = sort_product_network(m);
      const double headline = 4.0 * (r - 1) * (r - 1) * n;
      const double diam = static_cast<double>(r) * (n - 1);
      table.add_row({fmt(n), fmt(r), fmt(pg.num_nodes()),
                     fmt(report.cost.formula_time), fmt(headline),
                     bench::fmt(report.cost.formula_time / headline),
                     fmt(diam),
                     bench::fmt(report.cost.formula_time / diam)});
    }
  }
  table.print();
  table.maybe_export_csv("grid");
  std::printf("\nFixed r: measured/diam is constant -> O(N), asymptotically"
              " optimal (Section 5.1).\n");

  std::printf("\nExecutable mode (shearsort S2) on the 8^3 grid:\n");
  {
    const ProductGraph pg(labeled_path(8), 3);
    const auto keys = bench::random_keys(pg.num_nodes(), 4u);
    Machine m(pg, keys);
    const ShearsortS2 shear;
    SortOptions options;
    options.s2 = &shear;
    double ms = bench::time_ms([&] { (void)sort_product_network(m, options); });
    std::printf("  512 keys: %lld synchronous steps, %lld comparisons,"
                " sorted=%s, host time %.1f ms\n",
                static_cast<long long>(m.cost().exec_steps),
                static_cast<long long>(m.cost().comparisons),
                m.snake_sorted(full_view(pg)) ? "yes" : "NO", ms);
  }
  return 0;
}
