// Experiment E17 (ablations of the design choices DESIGN.md calls out):
//
//  A. Labeling quality — Section 2 recommends labeling factor nodes
//     along a Hamiltonian path.  Ablation: scramble the path factor's
//     labels and measure the executed steps of the same sort; the
//     dilation blow-up shows why the labeling matters (a constant
//     factor, as the paper says).
//
//  B. S2 sorter choice — Theorem 1's time is (r-1)^2 S2(N) + ...: the
//     2-D sorter dominates.  Ablation: run the identical schedule with
//     the modeled best sorter (oracle), the executable O(N log N)
//     shearsort, and the executable O(N^2) snake transposition sort.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "core/s2/network_s2.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "sortnet/batcher.hpp"
#include "graph/factor_graphs.hpp"
#include "graph/linear_embedding.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

// A path factor whose sorted-order labels are a random permutation of
// the path positions: consecutive labels can be far apart.
LabeledFactor scrambled_path(NodeId n, unsigned seed) {
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);

  LabeledFactor f;
  f.graph = make_path(n).relabeled(perm);
  f.name = "path-" + std::to_string(n) + "-scrambled";
  f.family = FactorFamily::kCustom;
  std::vector<NodeId> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), 0);
  f.dilation = order_dilation(f.graph, identity);
  f.hamiltonian = f.dilation == 1;
  f.s2_cost = 3.0 * n;      // same analytic charges; only exec changes
  f.routing_cost = n - 1.0;
  return f;
}

}  // namespace

int main() {
  std::printf("E17a: labeling ablation — Hamiltonian-path labels vs"
              " scrambled labels (same algorithm, same charges)\n\n");
  Table labeling({"factor", "N", "r", "dilation", "exec steps (shearsort)",
                  "sorted"});
  for (const NodeId n : {4, 8}) {
    for (const bool scrambled : {false, true}) {
      const LabeledFactor f =
          scrambled ? scrambled_path(n, 5) : labeled_path(n);
      const ProductGraph pg(f, 3);
      Machine m(pg, bench::random_keys(pg.num_nodes(), 31u));
      const ShearsortS2 shear;
      SortOptions options;
      options.s2 = &shear;
      (void)sort_product_network(m, options);
      labeling.add_row({f.name, fmt(n), fmt(3), fmt(f.dilation),
                        fmt(m.cost().exec_steps),
                        m.snake_sorted(full_view(pg)) ? "yes" : "NO"});
    }
  }
  labeling.print();
  std::printf("\nexec steps scale with the labeling dilation — the"
              " Section 2 recommendation is a pure constant-factor win,\n"
              "and correctness never depends on it (the paper's claim).\n\n");

  std::printf("E17b: S2 sorter ablation on the 8^3 grid (512 keys)\n\n");
  Table sorter_table({"S2 sorter", "S2(N) charged", "formula time",
                      "exec steps", "comparisons", "sorted"});
  const ProductGraph pg(labeled_path(8), 3);
  const OracleS2 oracle;
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const NetworkS2 batcher_emulated(odd_even_merge_sort_network(64));
  for (const S2Sorter* s2 : {static_cast<const S2Sorter*>(&oracle),
                             static_cast<const S2Sorter*>(&shear),
                             static_cast<const S2Sorter*>(&oet),
                             static_cast<const S2Sorter*>(&batcher_emulated)}) {
    Machine m(pg, bench::random_keys(pg.num_nodes(), 33u));
    SortOptions options;
    options.s2 = s2;
    const SortReport report = sort_product_network(m, options);
    sorter_table.add_row(
        {s2->name(), fmt(s2->phase_cost(pg.factor())),
         fmt(report.cost.formula_time), fmt(m.cost().exec_steps),
         fmt(m.cost().comparisons),
         m.snake_sorted(full_view(pg)) ? "yes" : "NO"});
  }
  sorter_table.print();
  std::printf("\nTheorem 1 is linear in S2(N): the 2-D sorter is the whole"
              " ballgame (Section 3.2's point).\n");
  return 0;
}
