#pragma once

// Shared helpers for the experiment benches: fixed-seed key generation,
// simple fixed-width table printing, wall-clock timing, and JSON export.
// Every bench prints a paper-vs-measured table for one experiment of
// DESIGN.md's per-experiment index; benches with machine-readable
// artifacts (BENCH_*.json) build a JsonValue tree and hand it to
// export_json instead of fprintf-ing braces by hand.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/multiway_merge.hpp"
#include "product/gray_code.hpp"
#include "render/csv.hpp"

namespace prodsort::bench {

inline std::vector<Key> random_keys(PNode count, unsigned seed) {
  std::vector<Key> keys(static_cast<std::size_t>(count));
  std::mt19937_64 rng(seed);
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000003);
  return keys;
}

/// Nearest-rank percentile over integer samples: ceil(p/100 * n),
/// 1-based, clamped to [1, n] — the same pick ServiceReport's latency
/// stats use, so service- and router-side benches report comparable
/// numbers.  Returns 0 on an empty sample set.  `samples` is taken by
/// value and sorted internally; call percentiles() for several cuts of
/// one set to sort only once.
inline std::int64_t percentile(std::vector<std::int64_t> samples, int p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  std::size_t rank = (static_cast<std::size_t>(p) * n + 99) / 100;
  rank = std::clamp<std::size_t>(rank, 1, n);
  return samples[rank - 1];
}

/// Several nearest-rank cuts of one sample set with a single sort;
/// result[i] corresponds to cuts[i].
inline std::vector<std::int64_t> percentiles(std::vector<std::int64_t> samples,
                                             const std::vector<int>& cuts) {
  std::sort(samples.begin(), samples.end());
  std::vector<std::int64_t> out;
  out.reserve(cuts.size());
  for (const int p : cuts) {
    if (samples.empty()) {
      out.push_back(0);
      continue;
    }
    const std::size_t n = samples.size();
    std::size_t rank = (static_cast<std::size_t>(p) * n + 99) / 100;
    rank = std::clamp<std::size_t>(rank, 1, n);
    out.push_back(samples[rank - 1]);
  }
  return out;
}

/// Millisecond wall-clock of a callable.
template <typename F>
double time_ms(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : widths_(headers.size()) {
    for (std::size_t i = 0; i < headers.size(); ++i)
      widths_[i] = headers[i].size() + 2;
    rows_.push_back(std::move(headers));
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i)
      widths_[i] = std::max(widths_[i], cells[i].size() + 2);
    rows_.push_back(std::move(cells));
  }

  void print() const {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t c = 0; c < rows_[r].size(); ++c)
        std::printf("%-*s", static_cast<int>(widths_[c]), rows_[r][c].c_str());
      std::printf("\n");
      if (r == 0) {
        std::size_t total = 0;
        for (const auto w : widths_) total += w;
        std::printf("%s\n", std::string(total, '-').c_str());
      }
    }
  }

  /// If the PRODSORT_CSV_DIR environment variable is set, also export
  /// the table as <dir>/<name>.csv (machine-readable bench results).
  void maybe_export_csv(const std::string& name) const {
    const char* dir = std::getenv("PRODSORT_CSV_DIR");
    if (dir == nullptr || rows_.empty()) return;
    CsvWriter csv(rows_.front());
    for (std::size_t r = 1; r < rows_.size(); ++r) {
      auto row = rows_[r];
      row.resize(rows_.front().size());  // pad ragged rows
      csv.add_row(std::move(row));
    }
    const std::string path = std::string(dir) + "/" + name + ".csv";
    csv.write(path);
    std::printf("[csv exported to %s]\n", path.c_str());
  }

 private:
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

inline std::string fmt(std::int64_t v) { return std::to_string(v); }
inline std::string fmt(int v) { return std::to_string(v); }

/// A small build-and-dump JSON tree for the BENCH_*.json artifacts.
/// Objects keep insertion order so exported files diff stably; numbers
/// are int64 (printed exactly) or double (printed with %.4f, matching
/// the historical hand-written exports).
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(bool b) : kind_(Kind::kBool), int_(b ? 1 : 0) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(std::uint64_t v)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}

  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  /// Adds (or appends) a key to an object.  Returns *this for chaining.
  JsonValue& set(std::string key, JsonValue value) {
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Appends an element to an array.
  JsonValue& push(JsonValue value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  void dump(std::FILE* f, int indent = 0) const {
    switch (kind_) {
      case Kind::kNull:
        std::fprintf(f, "null");
        break;
      case Kind::kBool:
        std::fprintf(f, "%s", int_ != 0 ? "true" : "false");
        break;
      case Kind::kInt:
        std::fprintf(f, "%lld", static_cast<long long>(int_));
        break;
      case Kind::kDouble:
        std::fprintf(f, "%.4f", double_);
        break;
      case Kind::kString:
        std::fprintf(f, "\"%s\"", escaped(string_).c_str());
        break;
      case Kind::kObject: {
        std::fprintf(f, "{");
        for (std::size_t i = 0; i < members_.size(); ++i) {
          std::fprintf(f, "%s\n%*s\"%s\": ", i ? "," : "", indent + 2, "",
                       escaped(members_[i].first).c_str());
          members_[i].second.dump(f, indent + 2);
        }
        if (!members_.empty()) std::fprintf(f, "\n%*s", indent, "");
        std::fprintf(f, "}");
        break;
      }
      case Kind::kArray: {
        std::fprintf(f, "[");
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          std::fprintf(f, "%s\n%*s", i ? "," : "", indent + 2, "");
          elements_[i].dump(f, indent + 2);
        }
        if (!elements_.empty()) std::fprintf(f, "\n%*s", indent, "");
        std::fprintf(f, "]");
        break;
      }
    }
  }

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  Kind kind_;
  std::string string_;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

/// Writes `root` as <PRODSORT_CSV_DIR or .>/<name>.json and announces
/// the path — the shared tail of every BENCH_*.json export.
inline void export_json(const std::string& name, const JsonValue& root) {
  const char* dir = std::getenv("PRODSORT_CSV_DIR");
  const std::string path =
      std::string(dir != nullptr ? dir : ".") + "/" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("[could not write %s]\n", path.c_str());
    return;
  }
  root.dump(f);
  std::fprintf(f, "\n");
  std::fclose(f);
  std::printf("[json exported to %s]\n", path.c_str());
}

}  // namespace prodsort::bench
