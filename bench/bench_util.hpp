#pragma once

// Shared helpers for the experiment benches: fixed-seed key generation,
// simple fixed-width table printing, and wall-clock timing.  Every bench
// prints a paper-vs-measured table for one experiment of DESIGN.md's
// per-experiment index.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/multiway_merge.hpp"
#include "product/gray_code.hpp"
#include "render/csv.hpp"

namespace prodsort::bench {

inline std::vector<Key> random_keys(PNode count, unsigned seed) {
  std::vector<Key> keys(static_cast<std::size_t>(count));
  std::mt19937_64 rng(seed);
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000003);
  return keys;
}

/// Millisecond wall-clock of a callable.
template <typename F>
double time_ms(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : widths_(headers.size()) {
    for (std::size_t i = 0; i < headers.size(); ++i)
      widths_[i] = headers[i].size() + 2;
    rows_.push_back(std::move(headers));
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i)
      widths_[i] = std::max(widths_[i], cells[i].size() + 2);
    rows_.push_back(std::move(cells));
  }

  void print() const {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t c = 0; c < rows_[r].size(); ++c)
        std::printf("%-*s", static_cast<int>(widths_[c]), rows_[r][c].c_str());
      std::printf("\n");
      if (r == 0) {
        std::size_t total = 0;
        for (const auto w : widths_) total += w;
        std::printf("%s\n", std::string(total, '-').c_str());
      }
    }
  }

  /// If the PRODSORT_CSV_DIR environment variable is set, also export
  /// the table as <dir>/<name>.csv (machine-readable bench results).
  void maybe_export_csv(const std::string& name) const {
    const char* dir = std::getenv("PRODSORT_CSV_DIR");
    if (dir == nullptr || rows_.empty()) return;
    CsvWriter csv(rows_.front());
    for (std::size_t r = 1; r < rows_.size(); ++r) {
      auto row = rows_[r];
      row.resize(rows_.front().size());  // pad ragged rows
      csv.add_row(std::move(row));
    }
    const std::string path = std::string(dir) + "/" + name + ".csv";
    csv.write(path);
    std::printf("[csv exported to %s]\n", path.c_str());
  }

 private:
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

inline std::string fmt(std::int64_t v) { return std::to_string(v); }
inline std::string fmt(int v) { return std::to_string(v); }

}  // namespace prodsort::bench
