// Experiment E16 (the R(N) charges, validated): store-and-forward packet
// simulation of worst-ish-case permutations on every factor family,
// compared with the analytic R(N) the cost model charges per Lemma 3
// routing phase, and with the executable sorting-based router.  Also
// simulates the actual Step 4 exchange pattern on a product to show it
// is far cheaper than a general permutation (adjacent-digit partners).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "network/packet_sim.hpp"
#include "network/routing.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E16: permutation routing — simulated vs analytic R(N)\n\n");

  Table table({"factor", "N", "R(N) charged", "sim worst", "sim reversal",
               "oet-router worst", "max link load"});
  std::mt19937 rng(23);
  for (const LabeledFactor& f : standard_factors()) {
    int sim_worst = 0;
    int oet_worst = 0;
    int link_load = 0;
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<NodeId> dest(static_cast<std::size_t>(f.size()));
      std::iota(dest.begin(), dest.end(), 0);
      std::shuffle(dest.begin(), dest.end(), rng);
      const PacketStats sim = simulate_permutation(f.graph, dest);
      sim_worst = std::max(sim_worst, sim.steps);
      link_load = std::max(link_load, sim.max_link_load);
      oet_worst = std::max(oet_worst, route_permutation(f, dest).steps);
    }
    std::vector<NodeId> reversal(static_cast<std::size_t>(f.size()));
    for (NodeId v = 0; v < f.size(); ++v)
      reversal[static_cast<std::size_t>(v)] = f.size() - 1 - v;
    const PacketStats rev = simulate_permutation(f.graph, reversal);

    table.add_row({f.name, fmt(f.size()), fmt(f.routing_cost), fmt(sim_worst),
                   fmt(rev.steps), fmt(oet_worst), fmt(link_load)});
  }
  table.print();

  std::printf("\nStep 4 exchange pattern on the 4^3 grid (digit +-1 in one"
              " dimension):\n");
  {
    const ProductGraph pg(labeled_path(4), 3);
    std::vector<PNode> dest(static_cast<std::size_t>(pg.num_nodes()));
    for (PNode v = 0; v < pg.num_nodes(); ++v) {
      const NodeId d = pg.digit(v, 3);
      dest[static_cast<std::size_t>(v)] = pg.with_digit(
          pg.with_digit(v, 3, d), 3,
          d % 2 == 0 ? (d + 1 < 4 ? d + 1 : d) : d - 1);
    }
    const PacketStats stats = simulate_product_permutation(pg, dest);
    std::printf("  delivered in %d steps (charged R(N) = %.1f per"
                " transposition phase; Hamiltonian factors need only 1)\n",
                stats.steps, pg.factor().routing_cost);
  }
  return 0;
}
