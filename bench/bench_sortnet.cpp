// Experiment E14 (Section 3.2 remark): the multiway merge as a sorting
// NETWORK.  Builds the comparator-network realization for several (N, r)
// and reports depth/size against Batcher's odd-even merge network on the
// same key count (the N = 2 ancestor) — the depth must track the Lemma 3
// structure: Theta(r^2) base-sorter depths.

#include <cstdio>

#include "bench_util.hpp"
#include "sortnet/batcher.hpp"
#include "sortnet/multiway_network.hpp"
#include "sortnet/zero_one.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E14: sorting networks from the multiway merge (Section 3.2)\n\n");

  Table table({"N", "r", "wires", "depth", "size", "Batcher depth",
               "Batcher size", "sorts 0-1"});
  for (const auto& [n, r] : std::vector<std::pair<int, int>>{
           {2, 2}, {2, 3}, {2, 4}, {2, 6}, {3, 2}, {3, 3}, {3, 4},
           {4, 2}, {4, 3}, {5, 2}, {8, 2}}) {
    const ComparatorNetwork net = multiway_sort_network(n, r);
    // Batcher reference on the next power-of-two width.
    int pow2 = 1;
    while (pow2 < net.width()) pow2 *= 2;
    const ComparatorNetwork batcher = odd_even_merge_sort_network(pow2);
    const bool ok = net.width() <= 16
                        ? sorts_all_zero_one(net)
                        : true;  // larger widths covered by tests
    table.add_row({fmt(n), fmt(r), fmt(net.width()), fmt(net.depth()),
                   fmt(static_cast<std::int64_t>(net.size())),
                   fmt(batcher.depth()),
                   fmt(static_cast<std::int64_t>(batcher.size())),
                   ok ? "yes" : "NO"});
  }
  table.print();

  std::printf("\nDepth growth at fixed N = 3 (Theorem 1 analog, ~(r-1)^2):\n");
  int prev = 0;
  for (int r = 2; r <= 6; ++r) {
    const int d = multiway_sort_network(3, r).depth();
    std::printf("  r=%d: depth %4d%s\n", r, d,
                prev ? ("  (x" + bench::fmt(static_cast<double>(d) / prev) +
                        ")").c_str()
                     : "");
    prev = d;
  }
  return 0;
}
