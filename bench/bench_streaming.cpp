// Streaming ingestion envelope (docs/STREAMING.md): memory high-water
// and egress latency versus batch size and backend-pool count, with and
// without fault pressure, self-gated so CI fails loudly on a
// regression:
//
//   (a) bounded memory: every cell's resident high-water must stay
//       within its byte budget — the backpressure headline — and the
//       faulted cells must conserve every key with zero certificate
//       escapes despite crashes, outages, and torn merges;
//   (b) egress latency: per-run service latency percentiles and the
//       seal lag (virtual time from the last arrival to the last sealed
//       range), the streaming analogue of the service benches' latency
//       tables;
//   (c) determinism: each cell's report hash must be identical across
//       executor thread counts.
//
// Results are exported as BENCH_streaming.json; every row carries the
// seed, so any cell replays by hand through prodsort_stream --repro.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "graph/labeled_factor.hpp"
#include "network/parallel_executor.hpp"
#include "stream/streaming_sorter.hpp"

namespace {

using namespace prodsort;
using bench::fmt;
using bench::JsonValue;
using bench::Table;

int g_gate_failures = 0;

void gate(bool ok, const char* what) {
  if (ok) return;
  ++g_gate_failures;
  std::fprintf(stderr, "GATE FAILED: %s\n", what);
}

struct Cell {
  std::int64_t batch_keys = 0;
  int backends = 0;
  bool faults = false;
  StreamReport report;
  std::int64_t seal_lag = 0;  ///< horizon - last arrival (egress latency)
};

StreamConfig cell_config(std::int64_t batch_keys, int backends, bool faults) {
  StreamConfig cfg;
  cfg.seed = 29;
  cfg.batches = 24;
  cfg.batch_keys = batch_keys;
  cfg.batch_interval = 64;
  cfg.ranges = 8;
  cfg.block = 16;  // run_keys = 16 nodes * 16 = 256 on cycle(4)^2
  cfg.budget_bytes = 4 * batch_keys * 8;
  cfg.backends = backends;
  cfg.domains = 2;
  if (faults) {
    cfg.faulty = 1;
    cfg.crash_rate = 0.05;
    cfg.tear_rate = 0.2;
    cfg.outage = "0@400~800";
  }
  return cfg;
}

Cell run_cell(const ProductGraph& pg, std::int64_t batch_keys, int backends,
              bool faults) {
  const StreamConfig cfg = cell_config(batch_keys, backends, faults);
  Cell cell;
  cell.batch_keys = batch_keys;
  cell.backends = backends;
  cell.faults = faults;

  ParallelExecutor executor(2);
  StreamingSorter sorter(pg, cfg, &executor);
  cell.report = sorter.run();
  const std::int64_t last_arrival =
      static_cast<std::int64_t>(cfg.batches - 1) * cfg.batch_interval;
  cell.seal_lag = cell.report.horizon - last_arrival;

  gate(cell.report.conserved(), "stream cell must conserve every key");
  gate(cell.report.high_water_bytes <= cell.report.budget_bytes,
       "memory high-water within budget");
  gate(cell.report.cert_escapes == 0, "zero certificate escapes");

  // (c) the virtual clock must not observe the executor width.
  ParallelExecutor single(1);
  StreamingSorter replay(pg, cfg, &single);
  gate(replay.run().hash() == cell.report.hash(),
       "report hash identical across thread counts");
  return cell;
}

}  // namespace

int main() {
  const LabeledFactor factor = labeled_cycle(4);
  const ProductGraph pg(factor, 2);

  std::vector<Cell> cells;
  for (const bool faults : {false, true})
    for (const std::int64_t batch_keys : {std::int64_t{256}, std::int64_t{1024},
                                          std::int64_t{4096}})
      for (const int backends : {2, 4, 8})
        cells.push_back(run_cell(pg, batch_keys, backends, faults));

  std::printf("Streaming ingestion envelope — cycle(4)^2, block=16, 24"
              " batches, 8 ranges, budget = 4 batches of keys\n"
              "(docs/STREAMING.md; every row replays via prodsort_stream"
              " --repro with seed=29)\n\n");
  Table table({"faults", "batch", "backends", "high-water", "budget",
               "stalls", "cuts", "run-p50", "run-p99", "seal-lag",
               "retries", "rollbacks"});
  for (const Cell& cell : cells) {
    table.add_row({cell.faults ? "on" : "off", fmt(cell.batch_keys),
                   fmt(cell.backends), fmt(cell.report.high_water_bytes),
                   fmt(cell.report.budget_bytes),
                   fmt(cell.report.backpressure_stalls),
                   fmt(cell.report.forced_cuts), fmt(cell.report.run_latency.p50),
                   fmt(cell.report.run_latency.p99), fmt(cell.seal_lag),
                   fmt(cell.report.retries), fmt(cell.report.merge_rollbacks)});
  }
  table.print();
  table.maybe_export_csv("bench_streaming");

  JsonValue rows = JsonValue::array();
  for (const Cell& cell : cells) {
    rows.push(JsonValue::object()
                  .set("faults", cell.faults)
                  .set("batch_keys", cell.batch_keys)
                  .set("backends", cell.backends)
                  .set("budget_bytes", cell.report.budget_bytes)
                  .set("high_water_bytes", cell.report.high_water_bytes)
                  .set("spill_high_bytes", cell.report.spill_high_bytes)
                  .set("backpressure_stalls", cell.report.backpressure_stalls)
                  .set("forced_cuts", cell.report.forced_cuts)
                  .set("run_latency_p50", cell.report.run_latency.p50)
                  .set("run_latency_p99", cell.report.run_latency.p99)
                  .set("seal_lag", cell.seal_lag)
                  .set("merge_steps", cell.report.merge_steps)
                  .set("retries", cell.report.retries)
                  .set("crash_injected", cell.report.crash_injected)
                  .set("merge_rollbacks", cell.report.merge_rollbacks)
                  .set("sdc_detected", cell.report.sdc_detected)
                  .set("conserved", cell.report.conserved())
                  .set("hash", cell.report.hash()));
  }
  JsonValue root = JsonValue::object();
  root.set("experiment", "streaming")
      .set("topology", "cycle(4)^2")
      .set("block", 16)
      .set("batches", 24)
      .set("ranges", 8)
      .set("seed", std::int64_t{29})
      .set("cells", std::move(rows));
  bench::export_json("BENCH_streaming", root);

  if (g_gate_failures != 0) {
    std::fprintf(stderr, "\n%d gate failure(s)\n", g_gate_failures);
    return 1;
  }
  std::printf("\nall streaming gates held across %zu cells\n", cells.size());
  return 0;
}
