// Experiment E12a: hot-path microbenchmarks (google-benchmark) — the
// addressing arithmetic and simulator primitives every phase relies on.

#include <benchmark/benchmark.h>

#include <random>

#include "core/s2/oracle_s2.hpp"
#include "network/machine.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;

void BM_GrayTuple(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const PNode total = pow_int(n, r);
  std::vector<NodeId> tuple(static_cast<std::size_t>(r));
  PNode rank = 0;
  for (auto _ : state) {
    gray_tuple(n, rank, tuple);
    benchmark::DoNotOptimize(tuple.data());
    rank = (rank + 1) % total;
  }
}
BENCHMARK(BM_GrayTuple)->Args({2, 20})->Args({4, 10})->Args({10, 6});

void BM_GrayRank(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const PNode total = pow_int(n, r);
  std::vector<NodeId> tuple(static_cast<std::size_t>(r));
  PNode rank = 0;
  for (auto _ : state) {
    gray_tuple(n, rank, tuple);
    benchmark::DoNotOptimize(gray_rank(n, tuple));
    rank = (rank + 1) % total;
  }
}
BENCHMARK(BM_GrayRank)->Args({2, 20})->Args({4, 10})->Args({10, 6});

void BM_SnakeRankRoundTrip(benchmark::State& state) {
  const ProductGraph pg(labeled_path(static_cast<NodeId>(state.range(0))),
                        static_cast<int>(state.range(1)));
  PNode rank = 0;
  for (auto _ : state) {
    const PNode node = node_at_snake_rank(pg, rank);
    benchmark::DoNotOptimize(snake_rank(pg, node));
    rank = (rank + 1) % pg.num_nodes();
  }
}
BENCHMARK(BM_SnakeRankRoundTrip)->Args({4, 8})->Args({8, 5});

void BM_CompareExchangePhase(benchmark::State& state) {
  const ProductGraph pg(labeled_path(4), static_cast<int>(state.range(0)));
  Machine m(pg, std::vector<Key>(static_cast<std::size_t>(pg.num_nodes()), 1));
  std::vector<CEPair> pairs;
  for (PNode v = 0; v + 1 < pg.num_nodes(); v += 2) pairs.push_back({v, v + 1});
  for (auto _ : state) {
    m.compare_exchange_step(pairs);
    benchmark::DoNotOptimize(m.keys().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pairs.size()));
}
BENCHMARK(BM_CompareExchangePhase)->Arg(6)->Arg(8);

void BM_OracleS2Phase(benchmark::State& state) {
  const ProductGraph pg(labeled_path(static_cast<NodeId>(state.range(0))), 4);
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  std::mt19937 rng(1);
  for (Key& k : keys) k = static_cast<Key>(rng());
  Machine m(pg, std::move(keys));
  const OracleS2 oracle;
  const auto views = all_views(pg, 1, 2);
  const std::vector<bool> desc(views.size(), false);
  for (auto _ : state) {
    oracle.sort_views(m, views, desc);
    benchmark::DoNotOptimize(m.keys().data());
  }
  state.SetItemsProcessed(state.iterations() * pg.num_nodes());
}
BENCHMARK(BM_OracleS2Phase)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
