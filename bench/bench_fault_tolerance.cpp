// Fault-tolerance envelope: sort success rate and slowdown under
// injected faults.  Sweeps compare-exchange/packet drop rate x number of
// permanently failed (non-cut) links on an executable sorter, reporting
// per-cell success rate, exec-step slowdown vs the fault-free run, retry
// and reroute counts, recovery work, and worst packet-path dilation.
// The fault-free column doubles as a regression sentinel: with no
// FaultModel attached the exec_steps must match a plain run exactly.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "core/verify.hpp"
#include "network/packet_sim.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

struct Cell {
  int trials = 0;
  int sorted = 0;
  int recovered = 0;
  double slowdown = 0;  // mean exec_steps ratio vs fault-free
  std::int64_t retries = 0;
  std::int64_t reroutes = 0;
  std::int64_t recovery_steps = 0;
  double dilation = 1.0;  // worst packet-path stretch
};

}  // namespace

int main() {
  std::printf("fault tolerance: success rate and slowdown vs fault rate\n\n");

  const LabeledFactor factor = labeled_cycle(6);
  const int r = 3;  // 216 nodes: executable sorter stays fast
  const ProductGraph pg(factor, r);
  const SnakeOETS2 oet;
  const int kTrials = 25;

  // Fault-free baseline exec_steps for the slowdown denominator.
  std::int64_t base_steps = 0;
  {
    Machine m(pg, bench::random_keys(pg.num_nodes(), 1), nullptr);
    SortOptions options;
    options.s2 = &oet;
    (void)sort_product_network(m, options);
    base_steps = m.cost().exec_steps;
  }

  const double rates[] = {0.0, 1e-4, 1e-3, 5e-3};
  const int link_counts[] = {0, 1, 2};

  Table table({"drop rate", "failed links", "sorted", "recovered",
               "slowdown", "retries", "reroutes", "recovery", "dilation"});
  std::mt19937_64 rng(29);
  for (const double rate : rates) {
    for (const int links : link_counts) {
      Cell cell;
      for (int trial = 0; trial < kTrials; ++trial) {
        FaultConfig config;
        config.seed = 100 + static_cast<std::uint64_t>(trial);
        config.ce_drop_rate = rate;
        config.packet_drop_rate = rate;
        config.failed_links = links;
        // The 0/0 cell is the attached-but-inert sentinel; every other
        // cell also carries one 4x straggler.
        config.stragglers = (rate == 0.0 && links == 0) ? 0 : 1;
        config.straggler_factor = 4;
        FaultModel fm(config);
        fm.select_stragglers(pg.num_nodes());

        const auto keys =
            bench::random_keys(pg.num_nodes(), 40 + static_cast<unsigned>(trial));
        const std::uint64_t checksum = multiset_checksum(keys);
        Machine m(pg, keys, nullptr);
        m.set_fault_model(&fm);
        SortOptions options;
        options.s2 = &oet;
        (void)sort_product_network(m, options);

        const RecoveryReport report = verify_and_recover(
            m, full_view(pg), {.expected_checksum = checksum});
        const auto got = m.read_snake(full_view(pg));
        std::vector<Key> expected = keys;
        std::sort(expected.begin(), expected.end());

        ++cell.trials;
        cell.sorted += got == expected;
        cell.recovered += report.outcome == RecoveryOutcome::kRecovered;
        cell.slowdown += static_cast<double>(m.cost().exec_steps) /
                         static_cast<double>(base_steps);
        cell.retries += m.cost().retries;
        cell.recovery_steps += report.recovery_steps;

        // Packet layer on the factor graph: retry + reroute behavior.
        std::vector<NodeId> dest(static_cast<std::size_t>(factor.size()));
        std::iota(dest.begin(), dest.end(), 0);
        std::shuffle(dest.begin(), dest.end(), rng);
        const PacketStats stats = simulate_permutation(factor.graph, dest, &fm);
        cell.retries += stats.retries;
        cell.reroutes += stats.reroutes;
        cell.dilation = std::max(cell.dilation, stats.dilation);
      }

      char rate_buf[32], sorted_buf[32], slow_buf[32], dil_buf[32];
      std::snprintf(rate_buf, sizeof rate_buf, "%g", rate);
      std::snprintf(sorted_buf, sizeof sorted_buf, "%d/%d", cell.sorted,
                    cell.trials);
      std::snprintf(slow_buf, sizeof slow_buf, "%.3fx",
                    cell.slowdown / cell.trials);
      std::snprintf(dil_buf, sizeof dil_buf, "%.2f", cell.dilation);
      table.add_row({rate_buf, fmt(links), sorted_buf, fmt(cell.recovered),
                     slow_buf, fmt(cell.retries), fmt(cell.reroutes),
                     fmt(cell.recovery_steps), dil_buf});
    }
  }
  table.print();
  table.maybe_export_csv("bench_fault_tolerance");

  std::printf(
      "\nslowdown = mean exec_steps over the fault-free run (%lld steps);"
      "\nthe 0/0 cell must read 1.000x: an attached all-zero FaultModel"
      " never perturbs the sort.\n",
      static_cast<long long>(base_steps));
  return 0;
}
