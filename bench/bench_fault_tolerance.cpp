// Fault-tolerance envelope: sort success rate and slowdown under
// injected faults.  Sweeps compare-exchange/packet drop rate x number of
// permanently failed (non-cut) links on an executable sorter, reporting
// per-cell success rate, exec-step slowdown vs the fault-free run, retry
// and reroute counts, recovery work, and worst packet-path dilation.
// The fault-free column doubles as a regression sentinel: with no
// FaultModel attached the exec_steps must match a plain run exactly.
//
// A second sweep measures fail-stop crash recovery overhead vs the
// checkpoint interval: frequent snapshots cost checkpoint_steps up
// front but keep rollbacks cheap; sparse ones invert the trade.  The
// curve is exported as BENCH_fault_recovery.json for the perf
// trajectory.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>
#include <string>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "core/verify.hpp"
#include "network/packet_sim.hpp"
#include "network/recovery.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

struct Cell {
  int trials = 0;
  int sorted = 0;
  int recovered = 0;
  double slowdown = 0;  // mean exec_steps ratio vs fault-free
  std::int64_t retries = 0;
  std::int64_t reroutes = 0;
  std::int64_t recovery_steps = 0;
  double dilation = 1.0;  // worst packet-path stretch
};

/// Per-checkpoint-interval aggregate of the crash-recovery sweep.
struct RecoveryCell {
  int interval = 0;
  int trials = 0;
  int sorted = 0;
  int data_loss = 0;
  std::int64_t crashes = 0;
  std::int64_t checkpoints = 0;
  std::int64_t checkpoint_steps = 0;
  std::int64_t recovery_steps = 0;
  std::int64_t rollbacks = 0;
  std::int64_t remaps = 0;
  double overhead = 0;  // mean exec_steps ratio vs fault-free
};

/// Synchronous-phase count of the fault-free schedule: an attached
/// all-zero FaultModel only ticks the clock, so the run is bit-identical
/// to a plain sort and fault_phase() reads the schedule length.
std::int64_t probe_phases(const ProductGraph& pg, const SortOptions& options) {
  FaultConfig tick;  // all rates zero: the model only ticks the clock
  FaultModel clock(tick);
  Machine m(pg, bench::random_keys(pg.num_nodes(), 1), nullptr);
  m.set_fault_model(&clock);
  (void)sort_product_network(m, options);
  return m.fault_phase();
}

void write_recovery_json(const std::vector<RecoveryCell>& cells,
                         const char* family, int r, PNode nodes, int trials,
                         std::int64_t base_steps) {
  using bench::JsonValue;
  JsonValue curves = JsonValue::array();
  for (const RecoveryCell& c : cells) {
    curves.push(JsonValue::object()
                    .set("interval", c.interval)
                    .set("sorted", c.sorted)
                    .set("data_loss", c.data_loss)
                    .set("crashes", c.crashes)
                    .set("checkpoints", c.checkpoints)
                    .set("checkpoint_steps", c.checkpoint_steps)
                    .set("recovery_steps", c.recovery_steps)
                    .set("rollbacks", c.rollbacks)
                    .set("remaps", c.remaps)
                    .set("overhead", c.overhead / c.trials));
  }
  JsonValue root = JsonValue::object()
                       .set("bench", "fault_recovery")
                       .set("topology", JsonValue::object()
                                            .set("factor", family)
                                            .set("r", r)
                                            .set("nodes", std::int64_t{nodes}))
                       .set("trials_per_interval", trials)
                       .set("baseline_exec_steps", base_steps)
                       .set("curves", std::move(curves));
  bench::export_json("BENCH_fault_recovery", root);
}

}  // namespace

int main() {
  std::printf("fault tolerance: success rate and slowdown vs fault rate\n\n");

  const LabeledFactor factor = labeled_cycle(6);
  const int r = 3;  // 216 nodes: executable sorter stays fast
  const ProductGraph pg(factor, r);
  const SnakeOETS2 oet;
  const int kTrials = 25;

  // Fault-free baseline exec_steps for the slowdown denominator.
  std::int64_t base_steps = 0;
  {
    Machine m(pg, bench::random_keys(pg.num_nodes(), 1), nullptr);
    SortOptions options;
    options.s2 = &oet;
    (void)sort_product_network(m, options);
    base_steps = m.cost().exec_steps;
  }

  const double rates[] = {0.0, 1e-4, 1e-3, 5e-3};
  const int link_counts[] = {0, 1, 2};

  Table table({"drop rate", "failed links", "sorted", "recovered",
               "slowdown", "retries", "reroutes", "recovery", "dilation"});
  std::mt19937_64 rng(29);
  for (const double rate : rates) {
    for (const int links : link_counts) {
      Cell cell;
      for (int trial = 0; trial < kTrials; ++trial) {
        FaultConfig config;
        config.seed = 100 + static_cast<std::uint64_t>(trial);
        config.ce_drop_rate = rate;
        config.packet_drop_rate = rate;
        config.failed_links = links;
        // The 0/0 cell is the attached-but-inert sentinel; every other
        // cell also carries one 4x straggler.
        config.stragglers = (rate == 0.0 && links == 0) ? 0 : 1;
        config.straggler_factor = 4;
        FaultModel fm(config);
        fm.select_stragglers(pg.num_nodes());

        const auto keys =
            bench::random_keys(pg.num_nodes(), 40 + static_cast<unsigned>(trial));
        const std::uint64_t checksum = multiset_checksum(keys);
        Machine m(pg, keys, nullptr);
        m.set_fault_model(&fm);
        SortOptions options;
        options.s2 = &oet;
        (void)sort_product_network(m, options);

        const RecoveryReport report = verify_and_recover(
            m, full_view(pg), {.expected_checksum = checksum});
        const auto got = m.read_snake(full_view(pg));
        std::vector<Key> expected = keys;
        std::sort(expected.begin(), expected.end());

        ++cell.trials;
        cell.sorted += got == expected;
        cell.recovered += report.outcome == RecoveryOutcome::kRecovered;
        cell.slowdown += static_cast<double>(m.cost().exec_steps) /
                         static_cast<double>(base_steps);
        cell.retries += m.cost().retries;
        cell.recovery_steps += report.recovery_steps;

        // Packet layer on the factor graph: retry + reroute behavior.
        std::vector<NodeId> dest(static_cast<std::size_t>(factor.size()));
        std::iota(dest.begin(), dest.end(), 0);
        std::shuffle(dest.begin(), dest.end(), rng);
        const PacketStats stats = simulate_permutation(factor.graph, dest, &fm);
        cell.retries += stats.retries;
        cell.reroutes += stats.reroutes;
        cell.dilation = std::max(cell.dilation, stats.dilation);
      }

      char rate_buf[32], sorted_buf[32], slow_buf[32], dil_buf[32];
      std::snprintf(rate_buf, sizeof rate_buf, "%g", rate);
      std::snprintf(sorted_buf, sizeof sorted_buf, "%d/%d", cell.sorted,
                    cell.trials);
      std::snprintf(slow_buf, sizeof slow_buf, "%.3fx",
                    cell.slowdown / cell.trials);
      std::snprintf(dil_buf, sizeof dil_buf, "%.2f", cell.dilation);
      table.add_row({rate_buf, fmt(links), sorted_buf, fmt(cell.recovered),
                     slow_buf, fmt(cell.retries), fmt(cell.reroutes),
                     fmt(cell.recovery_steps), dil_buf});
    }
  }
  table.print();
  table.maybe_export_csv("bench_fault_tolerance");

  std::printf(
      "\nslowdown = mean exec_steps over the fault-free run (%lld steps);"
      "\nthe 0/0 cell must read 1.000x: an attached all-zero FaultModel"
      " never perturbs the sort.\n",
      static_cast<long long>(base_steps));

  // ---- recovery overhead vs checkpoint interval -----------------------
  std::printf("\ncrash recovery: overhead vs checkpoint interval\n\n");

  SortOptions options;
  options.s2 = &oet;
  const std::int64_t phases = probe_phases(pg, options);
  const int intervals[] = {1, 2, 4, 8, 16, 32};
  const int kRecTrials = 12;

  Table rec_table({"interval", "sorted", "crashes", "ckpts", "ckpt steps",
                   "recovery", "rollbacks", "remaps", "overhead"});
  std::vector<RecoveryCell> cells;
  for (const int interval : intervals) {
    RecoveryCell cell;
    cell.interval = interval;
    for (int trial = 0; trial < kRecTrials; ++trial) {
      // Fixed per-trial crash schedule, identical across intervals so the
      // columns differ only in checkpoint policy: one restartable crash
      // mid-schedule plus, on every third trial, a permanent one that
      // forces the degraded-remap rung.
      FaultConfig config;
      config.seed = 500 + static_cast<std::uint64_t>(trial);
      config.crash_schedule.push_back(
          {.node = (trial * 13 + 5) % pg.num_nodes(),
           .phase = (trial * 7 + 3) % phases,
           .permanent = false});
      if (trial % 3 == 2)
        config.crash_schedule.push_back(
            {.node = (trial * 29 + 11) % pg.num_nodes(),
             .phase = (trial * 11 + 7) % phases,
             .permanent = true});
      FaultModel fm(config);

      const auto keys = bench::random_keys(
          pg.num_nodes(), 70 + static_cast<unsigned>(trial));
      Machine m(pg, keys, nullptr);
      m.set_fault_model(&fm);
      RecoveryController controller(m, {.checkpoint_interval = interval});
      const CrashRecoveryReport report = controller.run(options);

      ++cell.trials;
      cell.sorted += report.sorted;
      cell.data_loss += report.data_loss;
      cell.crashes += report.crashes;
      cell.checkpoints += m.cost().checkpoints;
      cell.checkpoint_steps += m.cost().checkpoint_steps;
      cell.recovery_steps += m.cost().recovery_steps;
      cell.rollbacks += m.cost().rollbacks;
      cell.remaps += m.cost().remap_sorts;
      cell.overhead += static_cast<double>(m.cost().exec_steps) /
                       static_cast<double>(base_steps);
    }

    char sorted_buf[32], over_buf[32];
    std::snprintf(sorted_buf, sizeof sorted_buf, "%d/%d", cell.sorted,
                  cell.trials);
    std::snprintf(over_buf, sizeof over_buf, "%.3fx",
                  cell.overhead / cell.trials);
    rec_table.add_row({fmt(interval), sorted_buf, fmt(cell.crashes),
                       fmt(cell.checkpoints), fmt(cell.checkpoint_steps),
                       fmt(cell.recovery_steps), fmt(cell.rollbacks),
                       fmt(cell.remaps), over_buf});
    cells.push_back(cell);
  }
  rec_table.print();
  rec_table.maybe_export_csv("bench_fault_recovery");
  write_recovery_json(cells, "cycle-6", r, pg.num_nodes(), kRecTrials,
                      base_steps);

  std::printf(
      "\nsmall intervals front-load checkpoint steps and shrink the work a"
      "\nrollback repeats; large ones invert the trade (schedule: %lld"
      " phases).\n",
      static_cast<long long>(phases));
  return 0;
}
