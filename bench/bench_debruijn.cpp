// Experiment E10 (Section 5.5, products of de Bruijn / shuffle-exchange
// graphs): S2 = O(log^2 N) via Batcher on the N^2-node factor graph
// (dilation-2 / dilation-4 embeddings), so the sort takes O(r^2 log^2 N)
// — matching Batcher's time on the monolithic N^r-node de Bruijn or
// shuffle-exchange network.  The tables sweep N at fixed r and r at
// fixed N and compare against that monolithic-Batcher reference,
// (log N^r)(log N^r + 1)/2.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "product/snake_order.hpp"
#include "sortnet/batcher.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

double monolithic_batcher(const ProductGraph& pg) {
  const double bits = std::log2(static_cast<double>(pg.num_nodes()));
  return bits * (bits + 1) / 2;
}

void sweep(const char* title, bool shuffle_exchange) {
  std::printf("%s\n", title);
  Table table({"N", "r", "keys", "measured", "r^2 log^2 N trend",
               "monolithic Batcher", "measured/Batcher"});
  for (const int r : {2, 3}) {
    for (const int d : {2, 3, 4}) {
      const LabeledFactor f =
          shuffle_exchange ? labeled_shuffle_exchange(d) : labeled_de_bruijn(d);
      const ProductGraph pg(f, r);
      if (pg.num_nodes() > 300000) continue;
      Machine m(pg, bench::random_keys(pg.num_nodes(), 9u));
      const SortReport report = sort_product_network(m);
      const double lg = d;
      const double trend = static_cast<double>(r) * r * lg * lg;
      const double batcher = monolithic_batcher(pg);
      table.add_row({fmt(f.size()), fmt(r), fmt(pg.num_nodes()),
                     fmt(report.cost.formula_time), fmt(trend), fmt(batcher),
                     bench::fmt(report.cost.formula_time / batcher)});
    }
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("E10: de Bruijn / shuffle-exchange products (Section 5.5) —"
              " O(r^2 log^2 N)\n\n");
  sweep("products of de Bruijn graphs (dilation-2 embedding):", false);
  sweep("products of shuffle-exchange graphs (dilation-4 embedding):", true);
  std::printf("measured/Batcher stays bounded as N and r grow: the product\n"
              "network sorts within a constant of the N^r-node de Bruijn /\n"
              "shuffle-exchange running Batcher, as Section 5.5 concludes.\n");
  return 0;
}
