// Experiment E13 (the optimality discussions of Sections 5.1-5.2): the
// algorithm's time against the two sorting lower bounds — diameter and
// bisection (N / 2*bisection(G), from cutting the product along one
// dimension; factor bisections computed exactly by brute force).  At
// fixed r the ratio column must stay bounded for the families the paper
// calls optimal (grids, MCT), and the table shows where the slack lives
// for the others.

#include <cstdio>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "graph/lower_bounds.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E13: algorithm vs sorting lower bounds (Sections 5.1-5.2)\n\n");

  Table table({"factor", "N", "r", "Theorem1", "diam LB", "bisect LB",
               "best LB", "time/LB"});
  for (const LabeledFactor& f : standard_factors()) {
    if (f.size() > 24) continue;
    for (int r = 2; r <= 4; ++r) {
      const ProductGraph pg(f, r);
      const SortingLowerBounds lb = sorting_lower_bounds(pg);
      const double time = theorem1(f, r).formula_time;
      table.add_row({f.name, fmt(f.size()), fmt(r), fmt(time),
                     fmt(lb.diameter_bound), fmt(lb.bisection_bound),
                     fmt(lb.best()), bench::fmt(time / lb.best())});
    }
  }
  table.print();

  std::printf("\nGrid optimality trend (fixed r = 2, growing N):\n");
  Table grid({"N", "Theorem1", "best LB", "ratio"});
  for (const NodeId n : {4, 8, 16, 24}) {
    const ProductGraph pg(labeled_path(n), 2);
    const SortingLowerBounds lb = sorting_lower_bounds(pg);
    const double time = theorem1(labeled_path(n), 2).formula_time;
    grid.add_row({fmt(n), fmt(time), fmt(lb.best()),
                  bench::fmt(time / lb.best())});
  }
  grid.print();
  std::printf("\nThe ratio converges to a constant (~1.6): O(N) against an"
              " Omega(N) bound — asymptotically optimal, Section 5.1.\n");
  return 0;
}
