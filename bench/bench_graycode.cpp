// Experiment E2 (Figs. 3-5, Definitions 2-3): N-ary Gray codes and snake
// order.  Validates the defining laws at scale and measures the rank<->
// tuple map throughput (the addressing cost every phase of the sorting
// algorithm pays).

#include <cstdio>

#include "bench_util.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

struct LawCheck {
  PNode checked = 0;
  PNode violations = 0;
};

LawCheck check_laws(NodeId n, int r) {
  LawCheck result;
  const PNode total = pow_int(n, r);
  std::vector<NodeId> prev(static_cast<std::size_t>(r));
  std::vector<NodeId> cur(static_cast<std::size_t>(r));
  gray_tuple(n, 0, prev);
  for (PNode rank = 1; rank < total; ++rank) {
    gray_tuple(n, rank, cur);
    ++result.checked;
    if (hamming_distance(prev, cur) != 1) ++result.violations;
    if (gray_rank(n, cur) != rank) ++result.violations;
    std::swap(prev, cur);
  }
  return result;
}

}  // namespace

int main() {
  std::printf("E2: N-ary Gray code / snake order laws (Defs. 2-3, Figs. 3-5)\n\n");

  Table laws({"N", "r", "tuples", "unit-Hamming+bijection", "violations"});
  for (const auto& [n, r] : std::vector<std::pair<NodeId, int>>{
           {2, 16}, {3, 10}, {4, 8}, {5, 6}, {10, 4}, {31, 3}}) {
    const LawCheck c = check_laws(n, r);
    laws.add_row({fmt(n), fmt(r), fmt(c.checked + 1),
                  c.violations == 0 ? "hold" : "VIOLATED", fmt(c.violations)});
  }
  laws.print();

  std::printf("\nSubsequence law [u]Q^1 positions (u, 2N-u-1, 2N+u, ...):\n");
  const NodeId n = 3;
  for (NodeId u = 0; u < n; ++u) {
    std::printf("  u=%d:", u);
    for (PNode j = 0; j < 6; ++j)
      std::printf(" %lld", static_cast<long long>(subsequence_position(n, u, j)));
    std::printf(" ...\n");
  }

  std::printf("\nThroughput of the addressing maps:\n");
  Table perf({"N", "r", "ops", "gray_rank ns/op", "gray_tuple ns/op"});
  for (const auto& [nn, r] : std::vector<std::pair<NodeId, int>>{
           {2, 20}, {4, 10}, {10, 6}}) {
    const PNode total = std::min<PNode>(pow_int(nn, r), 1 << 20);
    std::vector<NodeId> tuple(static_cast<std::size_t>(r));
    volatile PNode sink = 0;
    const double tuple_ms = bench::time_ms([&] {
      for (PNode rank = 0; rank < total; ++rank) {
        gray_tuple(nn, rank, tuple);
        sink = sink + tuple[0];
      }
    });
    const double rank_ms = bench::time_ms([&] {
      for (PNode rank = 0; rank < total; ++rank) {
        gray_tuple(nn, rank, tuple);
        sink = sink + gray_rank(nn, tuple);
      }
    });
    perf.add_row({fmt(nn), fmt(r), fmt(total),
                  bench::fmt((rank_ms - tuple_ms) * 1e6 / total),
                  bench::fmt(tuple_ms * 1e6 / total)});
  }
  perf.print();
  return 0;
}
