// Experiment E12b: ParallelExecutor scaling — wall-clock of the full
// network sort on a large grid as worker threads increase.  Results are
// bit-identical across thread counts (disjoint phases); only the host
// time changes.

#include <benchmark/benchmark.h>

#include "core/product_sort.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;

std::vector<Key> keys_for(const ProductGraph& pg) {
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  std::uint64_t x = 88172645463325252ull;
  for (Key& k : keys) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    k = static_cast<Key>(x % 1000003);
  }
  return keys;
}

void BM_SortGridThreads(benchmark::State& state) {
  const ProductGraph pg(labeled_path(16), 4);  // 65536 processors
  const auto keys = keys_for(pg);
  const int threads = static_cast<int>(state.range(0));
  ParallelExecutor exec(threads);
  for (auto _ : state) {
    Machine m(pg, keys, &exec);
    (void)sort_product_network(m);
    benchmark::DoNotOptimize(m.keys().data());
  }
  state.SetItemsProcessed(state.iterations() * pg.num_nodes());
}
BENCHMARK(BM_SortGridThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelForOverhead(benchmark::State& state) {
  ParallelExecutor exec(static_cast<int>(state.range(0)));
  std::vector<std::int64_t> data(1 << 16, 1);
  for (auto _ : state) {
    exec.parallel_for(static_cast<std::int64_t>(data.size()),
                      [&](std::int64_t begin, std::int64_t end) {
                        for (std::int64_t i = begin; i < end; ++i)
                          data[static_cast<std::size_t>(i)] += 1;
                      });
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
