// Experiment E9 (Section 5.4, Petersen cubes): with N = 10 fixed, the
// r-dimensional product of Petersen graphs sorts 10^r keys in O(r^2)
// time; S2 = 30 comes from the 10x10 grid subgraph (the Petersen graph
// is Hamiltonian) via Schnorr-Shamir, R = 9 from routing along the
// Hamiltonian path.  The table sweeps r and divides by (r-1)^2 to show
// the constant ("not small, but not unreasonably large" — Section 5.4).

#include <cstdio>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "graph/factor_graphs.hpp"
#include "graph/graph_algos.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E9: Petersen cubes (Section 5.4) — O(r^2) with constant"
              " ~S2+R\n\n");

  // Fig. 16 sanity: 10 nodes, 15 edges, 3-regular, diameter 2.
  const Graph petersen = make_petersen();
  std::printf("Fig. 16 check: %d nodes, %zu edges, %d-regular, diameter %d\n\n",
              petersen.num_nodes(), petersen.num_edges(),
              petersen.max_degree(), diameter(petersen));

  Table table({"r", "keys", "measured", "measured/(r-1)^2", "exec steps"});
  for (int r = 2; r <= 5; ++r) {
    const ProductGraph pg(labeled_petersen(), r);
    if (pg.num_nodes() > 200000) continue;
    Machine m(pg, bench::random_keys(pg.num_nodes(), 8u));
    const SortReport report = sort_product_network(m);
    table.add_row({fmt(r), fmt(pg.num_nodes()), fmt(report.cost.formula_time),
                   bench::fmt(report.cost.formula_time / ((r - 1) * (r - 1))),
                   fmt(m.cost().exec_steps)});
  }
  table.print();
  table.maybe_export_csv("petersen");
  std::printf("\nmeasured/(r-1)^2 approaches S2 + R = 39: the time is"
              " Theta(r^2) with a fixed constant, as Section 5.4 states.\n");
  return 0;
}
