// Experiment E1 (Figs. 1-2, Definition 1): product-network construction.
// For every factor family and dimension count, checks the closed-form
// node/edge/degree/diameter values against the constructed topology and
// reports them the way the paper's construction figures do.

#include <cstdio>

#include "bench_util.hpp"
#include "graph/graph_algos.hpp"
#include "product/product_graph.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

// Enumerated edge count via neighbor lists (small products only).
PNode enumerate_edges(const ProductGraph& pg) {
  PNode twice = 0;
  for (PNode v = 0; v < pg.num_nodes(); ++v)
    twice += static_cast<PNode>(pg.neighbors(v).size());
  return twice / 2;
}

}  // namespace

int main() {
  std::printf("E1: product construction (Figs. 1-2, Definition 1)\n");
  std::printf("edges must equal r * N^(r-1) * |E(G)|; diameter r * diam(G)\n\n");

  Table table({"factor", "N", "r", "nodes", "edges(formula)", "edges(enum)",
               "match", "max-degree", "diameter"});
  for (const LabeledFactor& f : standard_factors()) {
    for (int r = 1; r <= 3; ++r) {
      const ProductGraph pg(f, r);
      if (pg.num_nodes() > 20000) continue;
      const PNode formula = pg.num_edges();
      const PNode enumerated = enumerate_edges(pg);
      int max_degree = 0;
      for (PNode v = 0; v < pg.num_nodes(); ++v)
        max_degree = std::max(max_degree,
                              static_cast<int>(pg.neighbors(v).size()));
      table.add_row({f.name, fmt(f.size()), fmt(r), fmt(pg.num_nodes()),
                     fmt(formula), fmt(enumerated),
                     formula == enumerated ? "yes" : "NO",
                     fmt(max_degree), fmt(pg.diameter())});
    }
  }
  table.print();

  std::printf("\nFig. 1 walkthrough: 3-node factor, r = 1..3\n");
  const LabeledFactor path3 = labeled_path(3);
  for (int r = 1; r <= 3; ++r) {
    const ProductGraph pg(path3, r);
    std::printf("  PG_%d: %lld nodes, %lld edges\n", r,
                static_cast<long long>(pg.num_nodes()),
                static_cast<long long>(pg.num_edges()));
  }
  return 0;
}
