// Experiment E15 (extension; the keys >> processors regime the paper's
// Columnsort discussion lives in): block-mode sorting of b*N^r keys on
// N^r processors via merge-split.  Phase counts stay Theorem 1's; time
// scales linearly in b.  The table sweeps b on a fixed machine and
// compares against sequence-level Columnsort on the same key count.

#include <algorithm>
#include <cstdio>

#include "baselines/columnsort.hpp"
#include "bench_util.hpp"
#include "core/block_sort.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E15: block mode — b*N^r keys on N^r processors (merge-split)\n\n");

  const ProductGraph pg(labeled_path(4), 3);  // 64-processor grid
  ParallelExecutor exec(4);

  Table table({"b", "keys", "S2 phases", "R phases", "time", "time/b",
               "exec steps", "sorted", "columnsort ms", "block ms"});
  for (const int b : {1, 4, 16, 64, 256, 1024}) {
    const PNode total = pg.num_nodes() * b;
    const auto keys = bench::random_keys(total, 17u);

    BlockMachine m(pg, keys, b, &exec);
    BlockSortReport report;
    const double block_ms =
        bench::time_ms([&] { report = sort_block_network(m); });
    const bool sorted = m.snake_sorted(full_view(pg));

    // Columnsort reference on the same totals (rows = total/8, cols = 8;
    // shape valid once rows >= 98).
    double cs_ms = 0;
    if (columnsort_shape_ok(total / 8, 8)) {
      std::vector<Key> cs = keys;
      cs_ms = bench::time_ms([&] { (void)columnsort(cs, total / 8, 8); });
    }

    table.add_row({fmt(b), fmt(total), fmt(report.cost.s2_phases),
                   fmt(report.cost.routing_phases),
                   fmt(report.cost.formula_time),
                   bench::fmt(report.cost.formula_time / b),
                   fmt(report.cost.exec_steps), sorted ? "yes" : "NO",
                   cs_ms > 0 ? bench::fmt(cs_ms) : "-",
                   bench::fmt(block_ms)});
  }
  table.print();
  std::printf("\ntime/b is constant: the schedule is b-independent (phase"
              " counts stay (r-1)^2 and (r-1)(r-2)); each phase carries b"
              " keys.\n");
  return 0;
}
