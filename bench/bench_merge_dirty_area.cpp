// Experiment E3 (Figs. 6-11, Lemma 1): the dirty window left after the
// interleave (Step 3) of the multiway merge.  Lemma 1 bounds it by N^2
// for 0-1 inputs; the Step 3 remark of Section 4 bounds every key's
// displacement by N^2 for arbitrary keys.  The table reports the largest
// window/displacement actually observed over many adversarial inputs,
// next to the bound.

#include <algorithm>
#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "core/multiway_merge.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

struct Observed {
  std::int64_t dirty = 0;
  std::int64_t displacement = 0;
};

Observed run_zero_one(std::int64_t n, std::int64_t m, int trials,
                      unsigned seed) {
  Observed out;
  std::mt19937 rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<std::vector<Key>> inputs(static_cast<std::size_t>(n));
    for (auto& seq : inputs) {
      seq.assign(static_cast<std::size_t>(m), 1);
      std::fill_n(seq.begin(), rng() % static_cast<unsigned>(m + 1), 0);
    }
    MergeStats stats;
    (void)multiway_merge(inputs, &stats);
    out.dirty = std::max(out.dirty, stats.max_dirty_span);
    out.displacement = std::max(out.displacement, stats.max_displacement);
  }
  return out;
}

Observed run_random(std::int64_t n, std::int64_t m, int trials, unsigned seed) {
  Observed out;
  std::mt19937 rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<std::vector<Key>> inputs(static_cast<std::size_t>(n));
    for (auto& seq : inputs) {
      seq.resize(static_cast<std::size_t>(m));
      for (Key& k : seq) k = static_cast<Key>(rng() % 1000);
      std::sort(seq.begin(), seq.end());
    }
    MergeStats stats;
    (void)multiway_merge(inputs, &stats);
    out.dirty = std::max(out.dirty, stats.max_dirty_span);
    out.displacement = std::max(out.displacement, stats.max_displacement);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("E3: dirty area after Step 3 (Lemma 1, Figs. 6-11)\n");
  std::printf("bound: N^2 for the 0-1 dirty window and for key displacement\n\n");

  Table table({"N", "k", "keys", "bound N^2", "0-1 window", "0-1 ok",
               "rand displacement", "rand ok"});
  const std::pair<int, int> configs[] = {{2, 3}, {2, 6}, {2, 10}, {3, 3},
                                         {3, 5}, {4, 4}, {5, 3},  {8, 3},
                                         {10, 3}};
  for (const auto& [n, k] : configs) {
    const std::int64_t m = pow_int(n, k - 1);
    const std::int64_t bound = static_cast<std::int64_t>(n) * n;
    const Observed zo = run_zero_one(n, m, 200, static_cast<unsigned>(n * k));
    const Observed rd = run_random(n, m, 100, static_cast<unsigned>(n + k));
    table.add_row({fmt(n), fmt(k), fmt(m * n), fmt(bound), fmt(zo.dirty),
                   zo.dirty <= bound ? "yes" : "NO", fmt(rd.displacement),
                   rd.displacement <= bound ? "yes" : "NO"});
  }
  table.print();
  table.maybe_export_csv("merge_dirty_area");

  std::printf("\nTightness: with all-equal zero counts the window shrinks;"
              " skewed counts approach the bound.\n");
  return 0;
}
