// Experiment E11 (Section 1 comparison claims): the multiway-merge sort
// against Columnsort, Batcher's odd-even merge, shearsort, and std::sort
// at the sequence level.  The paper argues its merge-based scheme beats
// Columnsort's sort-based scheme because Step 1/3 are free and the only
// full sorts touch N^2 keys; here we report total comparison-ish work
// (host wall time) and the structural counters for the same inputs.

#include <algorithm>
#include <cstdio>

#include "baselines/batcher_sequence.hpp"
#include "baselines/columnsort.hpp"
#include "baselines/samplesort.hpp"
#include "baselines/shearsort.hpp"
#include "bench_util.hpp"
#include "core/fast_sequence_sort.hpp"
#include "core/sequence_sort.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E11: sequence-level comparison — multiway merge vs baselines\n\n");

  Table table({"keys", "N", "r", "mw-merge ms", "mw-fast ms", "mw-fast 4t ms",
               "columnsort ms", "batcher ms", "shearsort ms", "samplesort ms",
               "std::sort ms", "all agree"});
  ParallelExecutor exec(4);
  struct Shape {
    NodeId n;
    int r;
    std::int64_t cs_rows, cs_cols;  // columnsort shape for the same total
    std::int64_t sh_rows, sh_cols;  // shearsort mesh
  };
  const Shape shapes[] = {
      {2, 10, 256, 4, 32, 32},      // 1024 keys
      {4, 6, 512, 8, 64, 64},       // 4096 keys
      {2, 16, 8192, 8, 256, 256},   // 65536 keys
      {8, 6, 32768, 8, 512, 512},   // 262144 keys
  };
  for (const Shape& s : shapes) {
    const std::int64_t total = pow_int(s.n, s.r);
    const auto keys = bench::random_keys(total, 11u);

    std::vector<Key> expected = keys;
    const double std_ms =
        bench::time_ms([&] { std::sort(expected.begin(), expected.end()); });

    std::vector<Key> mw = keys;
    const double mw_ms =
        bench::time_ms([&] { (void)multiway_merge_sort(mw, s.n); });

    std::vector<Key> mwf = keys;
    const double mwf_ms =
        bench::time_ms([&] { multiway_merge_sort_fast(mwf, s.n); });

    std::vector<Key> mwp = keys;
    const double mwp_ms =
        bench::time_ms([&] { multiway_merge_sort_fast(mwp, s.n, &exec); });

    std::vector<Key> cs = keys;
    const double cs_ms =
        bench::time_ms([&] { (void)columnsort(cs, s.cs_rows, s.cs_cols); });

    std::vector<Key> bt = keys;
    const double bt_ms = bench::time_ms([&] { (void)batcher_sort(bt); });

    std::vector<Key> sh = keys;
    const double sh_ms =
        bench::time_ms([&] { (void)shearsort(sh, s.sh_rows, s.sh_cols); });
    const std::vector<Key> sh_seq = snake_to_sequence(sh, s.sh_rows, s.sh_cols);

    std::vector<Key> ss = keys;
    const double ss_ms =
        bench::time_ms([&] { (void)samplesort(ss, 16, 42u); });

    const bool agree = mw == expected && mwf == expected && mwp == expected &&
                       cs == expected && bt == expected && sh_seq == expected &&
                       ss == expected;
    table.add_row({fmt(total), fmt(s.n), fmt(s.r), bench::fmt(mw_ms),
                   bench::fmt(mwf_ms), bench::fmt(mwp_ms), bench::fmt(cs_ms),
                   bench::fmt(bt_ms), bench::fmt(sh_ms), bench::fmt(ss_ms),
                   bench::fmt(std_ms), agree ? "yes" : "NO"});
  }
  table.print();
  table.maybe_export_csv("baselines");

  std::printf("\nStructural comparison on 4^6 = 4096 keys:\n");
  {
    auto keys = bench::random_keys(4096, 13u);
    std::vector<Key> mw = keys;
    const MergeStats stats = multiway_merge_sort(mw, 4);
    std::vector<Key> cs = keys;
    const ColumnsortStats cstats = columnsort(cs, 512, 8);
    std::printf("  multiway merge: %lld merges, %lld N^2-key base sorts, %lld"
                " block sorts, %lld transposition phases\n",
                static_cast<long long>(stats.merges),
                static_cast<long long>(stats.base_sorts),
                static_cast<long long>(stats.block_sorts),
                static_cast<long long>(stats.transpositions));
    std::printf("  columnsort:     %d full column-sort rounds over %lld-key"
                " columns, %lld keys routed\n",
                cstats.column_sort_rounds, 512ll,
                static_cast<long long>(cstats.routed_keys));
    std::printf("  -> the merge scheme's only full sorts touch N^2 = 16 keys"
                " at a time;\n     Columnsort repeatedly sorts whole"
                " 512-key columns (the paper's Section 1 argument).\n");
  }
  return 0;
}
