// Experiment E8 (Section 5.3, hypercubes): with N = 2 fixed, our
// algorithm takes 3(r-1)^2 + (r-1)(r-2) steps to sort 2^r keys — the
// same O(r^2) asymptotic as Batcher's odd-even merge (depth r(r+1)/2),
// of which it is a generalization.  The table sweeps r, comparing the
// measured time against both closed forms; the ratio column shows the
// constant-factor gap at equal asymptotics.

#include <cstdio>

#include "baselines/batcher_sequence.hpp"
#include "baselines/bitonic_network.hpp"
#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E8: hypercubes (Section 5.3) — 3(r-1)^2 + (r-1)(r-2) vs"
              " Batcher depth r(r+1)/2; same O(r^2)\n\n");

  Table table({"r", "keys", "measured", "3(r-1)^2+(r-1)(r-2)", "exact",
               "Batcher depth", "sim bitonic steps", "ratio"});
  for (int r = 2; r <= 16; ++r) {
    const ProductGraph pg(labeled_k2(), r);
    Machine m(pg, bench::random_keys(pg.num_nodes(), 6u));
    const SortReport report = sort_product_network(m);

    auto keys = bench::random_keys(pg.num_nodes(), 7u);
    const BatcherRun batcher = batcher_sort(keys);

    // Batcher's bitonic network executed on the same simulated machine.
    Machine bm(pg, bench::random_keys(pg.num_nodes(), 7u));
    (void)bitonic_sort_on_hypercube(bm);

    const double ours = 3.0 * (r - 1) * (r - 1) + (r - 1) * (r - 2);
    table.add_row(
        {fmt(r), fmt(pg.num_nodes()), fmt(report.cost.formula_time), fmt(ours),
         report.cost.formula_time == ours ? "yes" : "NO", fmt(batcher.depth),
         fmt(bm.cost().exec_steps),
         bench::fmt(report.cost.formula_time / batcher.depth)});
  }
  table.print();
  table.maybe_export_csv("hypercube");
  std::printf("\nThe ratio tends to 8: the generalized algorithm meets"
              " Batcher's asymptotic complexity (the paper's claim) with a"
              " constant-factor overhead from the S2 = 3-step base sorts.\n");
  std::printf("Batcher's network is the N = 2 special case of the multiway"
              " merge (Section 5.3).\n");
  return 0;
}
