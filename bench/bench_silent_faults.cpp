// Silent-fault envelope: detection coverage and recovery overhead under
// injected comparator faults, comparing the two defenses the simulator
// offers (docs/FAULTS.md "Silent faults"):
//
//   certify-and-repair — sort plain, take an end-to-end certificate,
//   run the bounded dirty-window OET repair loop when it fails;
//   TMR               — sort under triple-modular-redundant voting,
//   paying 3x comparisons up front so single faults never land.
//
// Sweeps the injected fault count k; per cell it reports how many runs
// the faults actually corrupted, how many of those the certificate
// caught (silent escapes must be zero — every output is cross-checked
// against std::sort), repair pass counts against the nodes+4 budget,
// and mean exec-step overhead vs the fault-free baseline for both
// strategies.  The curve is exported as BENCH_silent_faults.json.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/certifier.hpp"
#include "core/product_sort.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "network/recovery.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

struct Cell {
  int faults = 0;  ///< injected comparator faults per trial
  int trials = 0;
  int corrupted = 0;       ///< plain sort output != std::sort
  int detected = 0;        ///< of those, certificate failed (must be all)
  int silent_escapes = 0;  ///< corrupted but certificate passed (must be 0)
  int repaired = 0;        ///< certify_and_repair returned kRepaired
  std::int64_t repair_passes = 0;
  int max_repair_passes = 0;
  double repair_overhead = 0;  ///< mean exec_steps ratio vs fault-free
  int tmr_sorted = 0;          ///< TMR run's output == std::sort
  std::int64_t tmr_masked = 0; ///< pair outcomes fixed by the vote
  double tmr_overhead = 0;     ///< mean exec_steps ratio vs fault-free
  std::vector<std::int64_t> repair_steps;  ///< per-trial, for percentiles
  std::vector<std::int64_t> tmr_steps;
};

std::int64_t probe_phases(const ProductGraph& pg, const SortOptions& options) {
  FaultConfig tick;  // all rates zero: the model only ticks the clock
  FaultModel clock(tick);
  Machine m(pg, bench::random_keys(pg.num_nodes(), 1), nullptr);
  m.set_fault_model(&clock);
  (void)sort_product_network(m, options);
  return m.fault_phase();
}

FaultConfig faults_for_trial(int k, int trial, PNode nodes,
                             std::int64_t phases) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(k) * 1000 +
                      static_cast<std::uint64_t>(trial));
  FaultConfig config;
  config.seed = rng();
  for (int i = 0; i < k; ++i) {
    ComparatorFault fault;
    fault.node = static_cast<PNode>(rng() % static_cast<std::uint64_t>(nodes));
    fault.from_phase =
        static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(phases));
    fault.until_phase =
        fault.from_phase + 1 +
        static_cast<std::int64_t>(
            rng() % static_cast<std::uint64_t>(phases - fault.from_phase));
    fault.kind = (rng() & 1) != 0 ? ComparatorFaultKind::kInverted
                                  : ComparatorFaultKind::kStuckPassThrough;
    config.comparator_schedule.push_back(fault);
  }
  return config;
}

void write_json(const std::vector<Cell>& cells, const char* family, int r,
                PNode nodes, int trials, std::int64_t base_steps) {
  using bench::JsonValue;
  JsonValue curves = JsonValue::array();
  for (const Cell& c : cells) {
    curves.push(
        JsonValue::object()
            .set("faults", c.faults)
            .set("corrupted", c.corrupted)
            .set("detected", c.detected)
            .set("silent_escapes", c.silent_escapes)
            .set("repaired", c.repaired)
            .set("repair_pass_mean",
                 c.repaired > 0 ? static_cast<double>(c.repair_passes) /
                                      static_cast<double>(c.repaired)
                                : 0.0)
            .set("repair_pass_max", c.max_repair_passes)
            .set("repair_overhead", c.repair_overhead / c.trials)
            .set("repair_steps_p50", bench::percentile(c.repair_steps, 50))
            .set("repair_steps_p99", bench::percentile(c.repair_steps, 99))
            .set("tmr_sorted", c.tmr_sorted)
            .set("tmr_masked", c.tmr_masked)
            .set("tmr_overhead", c.tmr_overhead / c.trials)
            .set("tmr_steps_p50", bench::percentile(c.tmr_steps, 50))
            .set("tmr_steps_p99", bench::percentile(c.tmr_steps, 99)));
  }
  JsonValue root =
      JsonValue::object()
          .set("bench", "silent_faults")
          .set("topology", JsonValue::object()
                               .set("factor", family)
                               .set("r", r)
                               .set("nodes", std::int64_t{nodes}))
          .set("trials_per_cell", trials)
          .set("repair_pass_budget", static_cast<std::int64_t>(nodes) + 4)
          .set("baseline_exec_steps", base_steps)
          .set("curves", std::move(curves));
  bench::export_json("BENCH_silent_faults", root);
}

}  // namespace

int main() {
  std::printf(
      "silent faults: detection coverage and repair overhead vs fault"
      " count\n\n");

  const LabeledFactor factor = labeled_cycle(6);
  const int r = 3;  // 216 nodes: executable sorter stays fast
  const ProductGraph pg(factor, r);
  const SnakeOETS2 oet;
  SortOptions options;
  options.s2 = &oet;
  const int kTrials = 25;

  std::int64_t base_steps = 0;
  {
    Machine m(pg, bench::random_keys(pg.num_nodes(), 1), nullptr);
    (void)sort_product_network(m, options);
    base_steps = m.cost().exec_steps;
  }
  const std::int64_t phases = probe_phases(pg, options);
  RepairOptions budget;
  budget.max_passes = static_cast<int>(pg.num_nodes()) + 4;

  Table table({"faults", "corrupted", "detected", "escapes", "repaired",
               "passes", "max", "repair ovh", "tmr sorted", "tmr masked",
               "tmr ovh"});
  std::vector<Cell> cells;
  for (const int k : {0, 1, 2, 3, 4}) {
    Cell cell;
    cell.faults = k;
    for (int trial = 0; trial < kTrials; ++trial) {
      const FaultConfig config =
          faults_for_trial(k, trial, pg.num_nodes(), phases);
      const auto keys = bench::random_keys(
          pg.num_nodes(), 40 + static_cast<unsigned>(trial));
      std::vector<Key> expected = keys;
      std::sort(expected.begin(), expected.end());
      const Certifier certifier(keys);
      ++cell.trials;

      // Strategy A: plain sort, certificate, bounded in-place repair.
      {
        FaultModel fm(config);
        Machine m(pg, keys, nullptr);
        m.set_fault_model(&fm);
        (void)sort_product_network(m, options);

        const bool corrupted = m.read_snake(full_view(pg)) != expected;
        const EndToEndCertificate cert = certifier.certify(m, full_view(pg));
        cell.corrupted += corrupted;
        cell.detected += corrupted && !cert.pass();
        cell.silent_escapes += corrupted && cert.pass();
        if (!cert.pass()) {
          const RepairReport repair =
              certify_and_repair(m, full_view(pg), certifier, budget);
          if (repair.outcome == RepairOutcome::kRepaired &&
              m.read_snake(full_view(pg)) == expected) {
            ++cell.repaired;
            cell.repair_passes += repair.passes;
            cell.max_repair_passes =
                std::max(cell.max_repair_passes, repair.passes);
          }
        }
        cell.repair_overhead += static_cast<double>(m.cost().exec_steps) /
                                static_cast<double>(base_steps);
        cell.repair_steps.push_back(m.cost().exec_steps);
      }

      // Strategy B: pay 3x up front, let the vote mask the fault.
      {
        FaultModel fm(config);
        Machine m(pg, keys, nullptr);
        m.set_fault_model(&fm);
        m.set_tmr(true);
        (void)sort_product_network(m, options);
        cell.tmr_sorted += m.read_snake(full_view(pg)) == expected;
        cell.tmr_masked += m.cost().tmr_masked;
        cell.tmr_overhead += static_cast<double>(m.cost().exec_steps) /
                             static_cast<double>(base_steps);
        cell.tmr_steps.push_back(m.cost().exec_steps);
      }
    }

    char rep_buf[32], tmr_buf[32], pass_buf[32];
    std::snprintf(rep_buf, sizeof rep_buf, "%.3fx",
                  cell.repair_overhead / cell.trials);
    std::snprintf(tmr_buf, sizeof tmr_buf, "%.3fx",
                  cell.tmr_overhead / cell.trials);
    std::snprintf(pass_buf, sizeof pass_buf, "%.1f",
                  cell.repaired > 0 ? static_cast<double>(cell.repair_passes) /
                                          static_cast<double>(cell.repaired)
                                    : 0.0);
    table.add_row({fmt(k), fmt(cell.corrupted), fmt(cell.detected),
                   fmt(cell.silent_escapes), fmt(cell.repaired), pass_buf,
                   fmt(cell.max_repair_passes), rep_buf, fmt(cell.tmr_sorted),
                   fmt(cell.tmr_masked), tmr_buf});
    cells.push_back(cell);
  }
  table.print();
  table.maybe_export_csv("bench_silent_faults");
  write_json(cells, "cycle-6", r, pg.num_nodes(), kTrials, base_steps);

  std::printf(
      "\nescapes must read 0: every corrupted output was caught by the"
      "\ncertificate (%d trials per cell, cross-checked against std::sort)."
      "\ncertify-and-repair pays only when a fault lands (max %d passes"
      " within the %lld-node+4 budget); TMR pays ~3x comparisons on every"
      " run but masks single faults outright.\n",
      kTrials,
      std::max_element(cells.begin(), cells.end(),
                       [](const Cell& a, const Cell& b) {
                         return a.max_repair_passes < b.max_repair_passes;
                       })
          ->max_repair_passes,
      static_cast<long long>(pg.num_nodes()));
  return 0;
}
