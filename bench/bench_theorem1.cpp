// Experiment E4 (Lemma 3 + Theorem 1): phase counts and total time of the
// network sort, measured on the simulator against the closed forms
//   #S2 phases = (r-1)^2,  #routing phases = (r-1)(r-2),
//   S_r(N) = (r-1)^2 S2(N) + (r-1)(r-2) R(N).
// Every row must match exactly: the algorithm's phase schedule *is* the
// formula.

#include <cstdio>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E4: Theorem 1 — measured vs predicted (oracle S2 mode)\n\n");

  Table table({"factor", "N", "r", "keys", "S2 phases", "pred", "R phases",
               "pred", "time", "pred", "exact"});
  bool all_exact = true;
  for (const LabeledFactor& f : standard_factors()) {
    for (int r = 2; r <= 6; ++r) {
      const ProductGraph pg(f, r);
      if (pg.num_nodes() > 200000) continue;
      Machine m(pg, bench::random_keys(pg.num_nodes(), 1u));
      const SortReport report = sort_product_network(m);
      const bool sorted = m.snake_sorted(full_view(pg));
      const bool exact =
          sorted && report.cost.s2_phases == report.predicted.s2_phases &&
          report.cost.routing_phases == report.predicted.routing_phases &&
          report.cost.formula_time == report.predicted.formula_time;
      all_exact = all_exact && exact;
      table.add_row({f.name, fmt(f.size()), fmt(r), fmt(pg.num_nodes()),
                     fmt(report.cost.s2_phases), fmt(report.predicted.s2_phases),
                     fmt(report.cost.routing_phases),
                     fmt(report.predicted.routing_phases),
                     fmt(report.cost.formula_time),
                     fmt(report.predicted.formula_time),
                     exact ? "yes" : "NO"});
    }
  }
  table.print();
  table.maybe_export_csv("theorem1");
  std::printf("\nAll rows exact: %s\n", all_exact ? "yes" : "NO");
  return all_exact ? 0 : 1;
}
