// Federated failover and topology-quarantine envelope — the
// router-layer acceptance experiments (docs/SERVICE.md, "Federation &
// fault domains"), self-gated so CI fails loudly when a claim regresses:
//
//   (a) cross-pool failover: with one pool's fault domain dark for a
//       sweep of outage widths, failover-on must keep strictly more
//       jobs on time than failover-off at identical offered load;
//   (b) quarantine vs TMR: routing merges around ONE attributed suspect
//       comparator (DegradedView + orphan merge) must cost fewer total
//       comparisons than whole-backend TMR at an equal zero-silent-
//       escape soak (>= 1000 trials, cross-checked against std::sort);
//   (c) determinism: the federated report conserves every job, is
//       hash-identical across executor thread counts, and replays
//       bit-identically from the same config.
//
// Results are exported as BENCH_router_failover.json; every experiment
// prints its seed so any row can be replayed by hand.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/hashing.hpp"
#include "core/product_sort.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "core/verify.hpp"
#include "network/recovery.hpp"
#include "product/degraded_view.hpp"
#include "service/router/pool_router.hpp"

namespace {

using namespace prodsort;
using bench::fmt;
using bench::JsonValue;
using bench::Table;

int g_gate_failures = 0;

void gate(bool ok, const char* what) {
  if (ok) return;
  ++g_gate_failures;
  std::fprintf(stderr, "GATE FAILED: %s\n", what);
}

// --- experiment (a): failover on vs off during an injected outage -------

struct FailoverCell {
  std::int64_t outage_steps = 0;
  std::int64_t on_time_on = 0;
  std::int64_t on_time_off = 0;
  std::int64_t failovers = 0;
  std::int64_t hedged = 0;
  std::int64_t refusals = 0;
};

std::vector<FailoverCell> run_failover_sweep(const ProductGraph& pg,
                                             const S2Sorter* s2,
                                             std::uint64_t seed,
                                             std::int64_t mean) {
  std::vector<FailoverCell> cells;
  for (const std::int64_t width : {std::int64_t{0}, 8 * mean, 24 * mean}) {
    FailoverCell cell;
    cell.outage_steps = width;
    for (const bool failover : {true, false}) {
      RouterConfig config;
      config.seed = seed;
      config.jobs = 40;
      // Half the federation going dark doubles the load on the
      // survivor; 0.4 leaves it the headroom failover needs to help.
      config.load = 0.4;
      config.deadline_slack = 8.0;
      config.policy = ShedPolicy::kEdf;
      config.breaker = {.failure_threshold = 2, .cooldown = 2 * mean};
      config.failover = failover;
      config.hedging = failover;

      std::vector<PoolSpec> pools(2);
      for (PoolSpec& p : pools) p.backends.resize(1);
      if (width > 0)
        pools[0].domain_schedule =
            "seed=3,outages=0~" + std::to_string(width);

      PoolRouter router(pg, config, pools, s2);
      const RouterReport report = router.run();
      gate(report.conserved(), "failover sweep: conservation");
      if (failover) {
        cell.on_time_on = report.completed_on_time;
        cell.failovers = report.failovers;
        cell.hedged = report.hedged_jobs;
        cell.refusals = report.pools[0].outage_refusals;
      } else {
        cell.on_time_off = report.completed_on_time;
      }
    }
    if (width > 0)
      gate(cell.on_time_on > cell.on_time_off,
           "failover-on must beat failover-off on on-time completions"
           " during an outage");
    cells.push_back(cell);
  }
  return cells;
}

// --- experiment (b): quarantine one suspect vs whole-backend TMR --------

struct SoakTotals {
  int trials = 0;
  int tmr_escapes = 0;
  int quarantine_escapes = 0;
  std::int64_t tmr_comparisons = 0;
  std::int64_t quarantine_comparisons = 0;
  std::vector<std::int64_t> tmr_samples;  ///< per-trial, for percentiles
  std::vector<std::int64_t> quarantine_samples;
};

SoakTotals run_quarantine_soak(const ProductGraph& pg, const S2Sorter* s2,
                               int trials) {
  SoakTotals totals;
  SortOptions options;
  options.s2 = s2;

  // Probe the phase count once so the injected fault covers every phase.
  std::int64_t phases = 0;
  {
    FaultConfig tick;
    FaultModel clock(tick);
    Machine m(pg, bench::random_keys(pg.num_nodes(), 1), nullptr);
    m.set_fault_model(&clock);
    (void)sort_product_network(m, options);
    phases = m.fault_phase();
  }

  const PNode nodes = pg.num_nodes();
  for (int trial = 0; trial < trials; ++trial) {
    // One attributed suspect comparator, inverted for the whole run —
    // the scenario the ledger's concentrated attribution names.
    const PNode suspect = static_cast<PNode>(
        mix64(0x5C4Bu, static_cast<std::uint64_t>(trial)) %
        static_cast<std::uint64_t>(nodes));
    FaultConfig config;
    config.seed = mix64(0xFA17u, static_cast<std::uint64_t>(trial));
    ComparatorFault fault;
    fault.node = suspect;
    fault.from_phase = 0;
    fault.until_phase = phases + 1;
    fault.kind = ComparatorFaultKind::kInverted;
    config.comparator_schedule.push_back(fault);

    const auto keys =
        bench::random_keys(nodes, 100 + static_cast<unsigned>(trial));
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());
    ++totals.trials;

    // Arm A: whole-backend TMR — 3x comparisons, vote masks the fault.
    {
      FaultModel fm(config);
      Machine m(pg, keys, nullptr);
      m.set_fault_model(&fm);
      m.set_tmr(true);
      (void)sort_product_network(m, options);
      totals.tmr_escapes += m.read_snake(full_view(pg)) != expected;
      totals.tmr_comparisons += m.cost().comparisons;
      totals.tmr_samples.push_back(m.cost().comparisons);
    }

    // Arm B: quarantine the named suspect — BFS-route the merges around
    // it, lift its key host-side, merge back at read-out (the same path
    // SortBackend takes for a ledger-named comparator).
    {
      FaultModel fm(config);
      Machine m(pg, keys, nullptr);
      m.set_fault_model(&fm);
      const ViewSpec view = full_view(pg);
      const PNode dead[] = {suspect};
      const DegradedView degraded(pg, view, dead);
      std::vector<Key> orphan = {m.key(suspect)};
      sort_degraded_snake(m, degraded);
      const std::vector<Key> live = read_degraded_snake(m, degraded);
      std::vector<Key> merged(live.size() + orphan.size());
      std::merge(live.begin(), live.end(), orphan.begin(), orphan.end(),
                 merged.begin());
      totals.quarantine_escapes += merged != expected;
      // Honest count: machine comparisons plus the host-side merge's
      // worst case (|merged| - 1).
      const std::int64_t paid = m.cost().comparisons +
                                static_cast<std::int64_t>(merged.size()) - 1;
      totals.quarantine_comparisons += paid;
      totals.quarantine_samples.push_back(paid);
    }
  }

  gate(totals.tmr_escapes == 0, "TMR arm must have zero silent escapes");
  gate(totals.quarantine_escapes == 0,
       "quarantine arm must have zero silent escapes");
  gate(totals.quarantine_comparisons < totals.tmr_comparisons,
       "quarantining one suspect must cost fewer comparisons than"
       " whole-backend TMR");
  return totals;
}

// --- experiment (c): conservation, thread invariance, replay ------------

struct InvarianceResult {
  bool conserved = false;
  bool thread_invariant = false;
  bool replays = false;
  std::uint64_t hash = 0;
};

InvarianceResult run_invariance(const ProductGraph& pg, const S2Sorter* s2,
                                std::uint64_t seed, std::int64_t mean) {
  RouterConfig config;
  config.seed = seed;
  config.jobs = 24;
  config.load = 1.2;
  config.policy = ShedPolicy::kEdf;
  config.breaker = {.failure_threshold = 2, .cooldown = 2 * mean};
  config.tenants = {{"alpha", 2.0, 4, 8}, {"beta", 1.0, 4, 8}};

  std::vector<PoolSpec> pools(2);
  for (PoolSpec& p : pools) p.backends.resize(2);
  pools[0].domain_schedule =
      "seed=3,outages=" + std::to_string(2 * mean) + "~" +
      std::to_string(10 * mean);
  pools[1].backends[0].fault_schedule = "seed=5,ce=0.002";

  InvarianceResult result;
  std::vector<std::uint64_t> hashes;
  bool conserved = true;
  for (const int threads : {1, 4, 1}) {
    ParallelExecutor executor(threads);
    PoolRouter router(pg, config, pools, s2, &executor);
    const RouterReport report = router.run();
    conserved = conserved && report.conserved();
    hashes.push_back(report.hash());
  }
  result.conserved = conserved;
  result.thread_invariant = hashes[0] == hashes[1];
  result.replays = hashes[0] == hashes[2];
  result.hash = hashes[0];
  gate(result.conserved, "federated conservation invariant");
  gate(result.thread_invariant, "report hash thread-count invariance");
  gate(result.replays, "bit-identical replay of the same config");
  return result;
}

void write_json(const std::vector<FailoverCell>& cells,
                const SoakTotals& soak, const InvarianceResult& inv,
                std::uint64_t seed, std::int64_t mean, PNode nodes) {
  JsonValue curve = JsonValue::array();
  for (const FailoverCell& c : cells)
    curve.push(JsonValue::object()
                   .set("outage_steps", c.outage_steps)
                   .set("on_time_failover_on", c.on_time_on)
                   .set("on_time_failover_off", c.on_time_off)
                   .set("failovers", c.failovers)
                   .set("hedged_jobs", c.hedged)
                   .set("outage_refusals", c.refusals));
  JsonValue root =
      JsonValue::object()
          .set("bench", "router_failover")
          .set("seed", static_cast<std::int64_t>(seed))
          .set("nodes", std::int64_t{nodes})
          .set("mean_service_steps", mean)
          .set("failover_sweep", std::move(curve))
          .set("quarantine_soak",
               JsonValue::object()
                   .set("trials", soak.trials)
                   .set("tmr_escapes", soak.tmr_escapes)
                   .set("quarantine_escapes", soak.quarantine_escapes)
                   .set("tmr_comparisons", soak.tmr_comparisons)
                   .set("quarantine_comparisons",
                        soak.quarantine_comparisons)
                   .set("tmr_p50", bench::percentile(soak.tmr_samples, 50))
                   .set("tmr_p99", bench::percentile(soak.tmr_samples, 99))
                   .set("quarantine_p50",
                        bench::percentile(soak.quarantine_samples, 50))
                   .set("quarantine_p99",
                        bench::percentile(soak.quarantine_samples, 99))
                   .set("comparison_ratio",
                        static_cast<double>(soak.quarantine_comparisons) /
                            static_cast<double>(
                                std::max<std::int64_t>(
                                    1, soak.tmr_comparisons))))
          .set("invariance", JsonValue::object()
                                 .set("conserved", inv.conserved)
                                 .set("thread_invariant",
                                      inv.thread_invariant)
                                 .set("replays", inv.replays)
                                 .set("report_hash", inv.hash))
          .set("gate_failures", g_gate_failures);
  bench::export_json("BENCH_router_failover", root);
}

}  // namespace

int main() {
  std::printf(
      "router failover: cross-pool failover vs outage width, and"
      " topology quarantine vs whole-backend TMR\n\n");

  const std::uint64_t kSeed = 2026;
  const ProductGraph pg(labeled_path(3), 2);  // 9 nodes: soak stays fast
  const SnakeOETS2 oet;
  std::printf("seed=%llu  topology=path-3^2 (%lld nodes)\n\n",
              static_cast<unsigned long long>(kSeed),
              static_cast<long long>(pg.num_nodes()));

  std::int64_t mean = 1;
  {
    RouterConfig probe;
    probe.seed = kSeed;
    probe.jobs = 0;
    std::vector<PoolSpec> one(1);
    one[0].backends.resize(1);
    mean = PoolRouter(pg, probe, one, &oet).mean_service_steps();
  }

  // (a) failover sweep.
  const std::vector<FailoverCell> cells =
      run_failover_sweep(pg, &oet, kSeed, mean);
  Table sweep({"outage", "on-time (failover)", "on-time (no failover)",
               "failovers", "hedged", "refusals"});
  for (const FailoverCell& c : cells)
    sweep.add_row({fmt(c.outage_steps), fmt(c.on_time_on),
                   fmt(c.on_time_off), fmt(c.failovers), fmt(c.hedged),
                   fmt(c.refusals)});
  sweep.print();
  sweep.maybe_export_csv("bench_router_failover");

  // (b) quarantine-vs-TMR soak on a larger topology so the 3x tax and
  // the ~1x quarantine separate cleanly.
  const ProductGraph soak_pg(labeled_cycle(6), 2);  // 36 nodes
  const int kTrials = 1000;
  std::printf("\nquarantine soak: %d trials on cycle-6^2 (%lld nodes),"
              " one inverted suspect comparator per trial\n",
              kTrials, static_cast<long long>(soak_pg.num_nodes()));
  const SoakTotals soak = run_quarantine_soak(soak_pg, &oet, kTrials);
  std::printf(
      "  escapes: tmr=%d quarantine=%d (both must be 0)\n"
      "  comparisons: tmr=%lld quarantine=%lld (ratio %.3f)\n"
      "  per-trial: tmr p50=%lld p99=%lld | quarantine p50=%lld p99=%lld\n",
      soak.tmr_escapes, soak.quarantine_escapes,
      static_cast<long long>(soak.tmr_comparisons),
      static_cast<long long>(soak.quarantine_comparisons),
      static_cast<double>(soak.quarantine_comparisons) /
          static_cast<double>(std::max<std::int64_t>(1,
                                                     soak.tmr_comparisons)),
      static_cast<long long>(bench::percentile(soak.tmr_samples, 50)),
      static_cast<long long>(bench::percentile(soak.tmr_samples, 99)),
      static_cast<long long>(bench::percentile(soak.quarantine_samples, 50)),
      static_cast<long long>(bench::percentile(soak.quarantine_samples, 99)));

  // (c) conservation / thread invariance / replay.
  const InvarianceResult inv = run_invariance(pg, &oet, kSeed, mean);
  std::printf(
      "\ninvariance: conserved=%s thread_invariant=%s replays=%s"
      " hash=%llx\n",
      inv.conserved ? "yes" : "NO", inv.thread_invariant ? "yes" : "NO",
      inv.replays ? "yes" : "NO",
      static_cast<unsigned long long>(inv.hash));

  write_json(cells, soak, inv, kSeed, mean, pg.num_nodes());

  if (g_gate_failures > 0) {
    std::fprintf(stderr, "\n%d gate(s) failed\n", g_gate_failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
