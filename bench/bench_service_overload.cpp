// Service overload envelope: latency and goodput vs offered load for
// the deadline-aware sort service (docs/SERVICE.md).  Sweeps offered
// load at 0.5x / 1x / 1.5x / 2x of pool capacity, with and without
// backend faults, for each shedding policy — the same traffic (same
// seed) under every policy, so the curves are directly comparable.
//
// Exported as BENCH_service_overload.json.  The headline claims the
// JSON must show: at overload, EDF's deadline-miss shedding beats
// drop-tail on on-time completions (drop-tail wastes capacity serving
// already-expired jobs), and with faults every completion is still
// verified — degradation shows up as retries, breaker trips, and
// fallback jobs, never as silent loss.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "service/sort_service.hpp"

namespace {

using namespace prodsort;
using bench::fmt;
using bench::JsonValue;
using bench::Table;

struct CellResult {
  double load = 0;
  bool faults = false;
  ShedPolicy policy = ShedPolicy::kDropTail;
  ServiceReport report;
};

std::vector<BackendConfig> make_backends(bool faults, std::int64_t mean) {
  std::vector<BackendConfig> configs(3);
  if (!faults) return configs;
  // Backend 0: recoverable message loss + a restartable crash.
  configs[0].fault_schedule = "seed=11,ce=0.002,crashes=5@7";
  // Backend 1: fail-stop (permanent crash, no remap budget) healing
  // after ~8 mean service times — exercises trips, reroute, half-open
  // probe recovery, and (while both faulted backends are open) the
  // samplesort fallback.
  configs[1].fault_schedule = "seed=13,crashes=9@4P";
  configs[1].recovery.max_remaps = 0;
  configs[1].fault_until = 8 * mean;
  return configs;
}

}  // namespace

int main() {
  std::printf("service overload: latency/goodput vs load, policy, faults\n\n");

  const LabeledFactor factor = labeled_cycle(4);
  const ProductGraph pg(factor, 2);  // 16 nodes: executable sorter
  const SnakeOETS2 oet;
  const std::int64_t kJobs = 60;

  const double loads[] = {0.5, 1.0, 1.5, 2.0};
  const ShedPolicy policies[] = {ShedPolicy::kDropTail, ShedPolicy::kEdf,
                                 ShedPolicy::kPriority};

  // Fault-free probe for the mean service time.
  ServiceConfig probe;
  probe.jobs = 0;
  const std::int64_t mean =
      SortService(pg, probe, std::vector<BackendConfig>(1), &oet)
          .mean_service_steps();
  std::printf("topology cycle-4^2 (%lld nodes), mean service %lld steps,"
              " %lld jobs per cell\n\n",
              static_cast<long long>(pg.num_nodes()),
              static_cast<long long>(mean), static_cast<long long>(kJobs));

  Table table({"load", "faults", "policy", "on-time", "late", "shed", "fail",
               "retry", "fallbk", "p50", "p95", "p99", "goodput"});
  std::vector<CellResult> cells;

  for (const bool faults : {false, true}) {
    for (const double load : loads) {
      for (const ShedPolicy policy : policies) {
        ServiceConfig config;
        config.seed = 7;
        config.jobs = kJobs;
        config.load = load;
        config.deadline_slack = 4.0;
        config.retry_budget = 3;
        config.queue = {policy, 8};
        config.breaker = {.failure_threshold = 2, .cooldown = 2 * mean};

        SortService service(pg, config, make_backends(faults, mean), &oet);
        CellResult cell;
        cell.load = load;
        cell.faults = faults;
        cell.policy = policy;
        cell.report = service.run();
        if (!cell.report.conserved())
          std::printf("WARNING: conservation violated at load %.1f\n", load);

        const ServiceReport& r = cell.report;
        table.add_row({fmt(load), faults ? "on" : "off", to_string(policy),
                       fmt(r.completed_on_time), fmt(r.completed_late),
                       fmt(r.shed_queue_full + r.shed_deadline), fmt(r.failed),
                       fmt(r.retries), fmt(r.fallback_jobs),
                       fmt(r.latency.p50), fmt(r.latency.p95),
                       fmt(r.latency.p99), fmt(r.goodput)});
        cells.push_back(std::move(cell));
      }
    }
  }

  table.print();
  table.maybe_export_csv("bench_service_overload");

  JsonValue curves = JsonValue::array();
  for (const CellResult& cell : cells) {
    const ServiceReport& r = cell.report;
    curves.push(
        JsonValue::object()
            .set("load", cell.load)
            .set("faults", cell.faults ? 1 : 0)
            .set("policy", to_string(cell.policy))
            .set("offered", r.offered)
            .set("on_time", r.completed_on_time)
            .set("late", r.completed_late)
            .set("shed_queue_full", r.shed_queue_full)
            .set("shed_deadline", r.shed_deadline)
            .set("failed", r.failed)
            .set("retries", r.retries)
            .set("fallback_jobs", r.fallback_jobs)
            .set("degraded_jobs", r.degraded_jobs)
            .set("verified_jobs", r.verified_jobs)
            .set("breaker_transitions", r.breaker_transitions)
            .set("queue_high_water", r.queue_high_water)
            .set("p50", r.latency.p50)
            .set("p95", r.latency.p95)
            .set("p99", r.latency.p99)
            .set("max_latency", r.latency.max)
            .set("goodput", r.goodput)
            .set("conserved", r.conserved() ? 1 : 0)
            .set("hash", r.hash()));
  }
  JsonValue root =
      JsonValue::object()
          .set("bench", "service_overload")
          .set("topology", JsonValue::object()
                               .set("factor", "cycle-4")
                               .set("r", 2)
                               .set("nodes", std::int64_t{pg.num_nodes()}))
          .set("jobs_per_cell", kJobs)
          .set("mean_service_steps", mean)
          .set("backends", 3)
          .set("curves", std::move(curves));
  bench::export_json("BENCH_service_overload", root);

  std::printf(
      "\ndrop-tail serves stale jobs late under overload; EDF sheds them"
      "\nunserved and spends the capacity on jobs that can still hit their"
      "\ndeadline.  With faults on, completions stay verified — pressure"
      "\nshows up as retries, breaker trips, and fallback jobs instead.\n");
  return 0;
}
