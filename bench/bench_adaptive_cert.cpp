// bench_adaptive_cert — the adaptive-certification risk dial's
// detection-probability vs overhead curve (docs/FAULTS.md, "Adaptive
// certification").
//
// On a cycle-6 r=3 product (216 nodes, SnakeOETS2) each trial injects
// one transient silently-inverted comparator at a seed-hashed node and
// window, sorts, and then certifies the *same* output at every
// graduated level with the same trial-local sample seed — so the three
// points of the curve are measured on identical corruptions and the
// nested-sample property makes per-trial detection monotone in level.
// The certificate's virtual-clock charge (certificate_steps) is the
// overhead axis.
//
// Self-gates (exit 1 on violation):
//  * detection counts are monotone nondecreasing in level;
//  * full level detects every corrupted trial — zero silent escapes;
//  * each sampled level is strictly cheaper than full on the virtual
//    clock;
//  * each level's measured escape rate stays at or below its analytic
//    single-swap bound 1 - coverage (with slack for multi-violation
//    corruptions, which only help detection).
//
// Exports BENCH_adaptive_cert.json (one entry per level).

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "core/adaptive_cert.hpp"
#include "core/certifier.hpp"
#include "core/hashing.hpp"
#include "core/product_sort.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "core/verify.hpp"
#include "network/fault_model.hpp"
#include "product/snake_order.hpp"

using namespace prodsort;
using namespace prodsort::bench;

namespace {

constexpr unsigned kSeed = 2026;
constexpr long kTrials = 150;

struct LevelStats {
  long corrupted = 0;
  long detected = 0;
  std::int64_t cert_steps = 0;
  std::vector<std::int64_t> step_samples;  ///< per-trial, for percentiles
};

}  // namespace

int main() {
  const LabeledFactor factor = labeled_cycle(6);
  const ProductGraph pg(factor, 3);
  const PNode n = pg.num_nodes();
  const SnakeOETS2 oet;
  const ViewSpec view = full_view(pg);
  const AdaptiveCertConfig defaults;

  // Probe the fault-free phase count once so hashed fault windows land
  // inside the sort (the phase clock is data-independent here: the OET
  // schedule runs its full fixed-pass plan under an attached model).
  std::int64_t phases = 0;
  {
    FaultConfig tick;
    FaultModel clock(tick);
    Machine machine(pg, random_keys(n, kSeed));
    machine.set_fault_model(&clock);
    SortOptions options;
    options.s2 = &oet;
    (void)sort_product_network(machine, options);
    phases = machine.fault_phase();
  }

  LevelStats stats[3];
  long corrupted_trials = 0;
  for (long trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t h =
        mix64(mix64(kSeed) ^ 0x6164636572ULL, static_cast<std::uint64_t>(trial));
    const std::vector<Key> keys =
        random_keys(n, static_cast<unsigned>(h & 0x7fffffff));
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());

    FaultConfig config;
    config.seed = mix64(h, 1);
    ComparatorFault fault;
    fault.node = static_cast<PNode>(mix64(h, 2) %
                                    static_cast<std::uint64_t>(n));
    fault.from_phase = static_cast<std::int64_t>(
        mix64(h, 3) % static_cast<std::uint64_t>(phases));
    fault.until_phase =
        fault.from_phase + 1 +
        static_cast<std::int64_t>(
            mix64(h, 4) %
            static_cast<std::uint64_t>(phases - fault.from_phase));
    fault.kind = ComparatorFaultKind::kInverted;
    config.comparator_schedule.push_back(fault);

    FaultModel fm(config);
    Machine machine(pg, keys);
    machine.set_fault_model(&fm);
    SortOptions options;
    options.s2 = &oet;
    (void)sort_product_network(machine, options);
    const std::vector<Key> got = machine.read_snake(view);
    const bool corrupted = got != expected;
    corrupted_trials += corrupted;

    const Certifier certifier(keys);
    for (int level = 0; level < 3; ++level) {
      CertPlan plan;
      plan.level = static_cast<CertLevel>(level);
      plan.coverage = defaults.coverage[level];
      plan.fingerprint = trial % defaults.fingerprint_every[level] == 0;
      plan.sample_seed = mix64(h, 5);
      const EndToEndCertificate cert = certifier.certify_sampled(got, plan);
      stats[level].corrupted += corrupted;
      stats[level].detected += corrupted && !cert.pass();
      const std::int64_t steps =
          certificate_steps(n, cert.scanned_pairs, plan.fingerprint);
      stats[level].cert_steps += steps;
      stats[level].step_samples.push_back(steps);
    }
  }

  Table table({"level", "coverage", "fp-every", "corrupted", "detected",
               "detect-rate", "escape-rate", "bound", "mean-cert-steps",
               "p50", "p99"});
  JsonValue levels = JsonValue::array();
  int violations = 0;
  const double full_mean =
      static_cast<double>(stats[2].cert_steps) / static_cast<double>(kTrials);
  for (int level = 0; level < 3; ++level) {
    const LevelStats& s = stats[level];
    const double detect_rate =
        s.corrupted > 0 ? static_cast<double>(s.detected) /
                              static_cast<double>(s.corrupted)
                        : 1.0;
    const double escape_rate = 1.0 - detect_rate;
    const double bound = 1.0 - defaults.coverage[level];
    const double mean_steps =
        static_cast<double>(s.cert_steps) / static_cast<double>(kTrials);
    const std::string name = to_string(static_cast<CertLevel>(level));
    // Nearest-rank cuts over the per-trial charge — the same rule the
    // service/router latency stats use (bench_util.hpp).
    const std::vector<std::int64_t> cuts =
        percentiles(s.step_samples, {50, 99});
    table.add_row({name, fmt(defaults.coverage[level]),
                   fmt(defaults.fingerprint_every[level]),
                   fmt(static_cast<std::int64_t>(s.corrupted)),
                   fmt(static_cast<std::int64_t>(s.detected)),
                   fmt(detect_rate * 100) + "%", fmt(escape_rate * 100) + "%",
                   fmt(bound * 100) + "%", fmt(mean_steps), fmt(cuts[0]),
                   fmt(cuts[1])});
    levels.push(JsonValue::object()
                    .set("level", name)
                    .set("coverage", defaults.coverage[level])
                    .set("fingerprint_every", defaults.fingerprint_every[level])
                    .set("trials", static_cast<std::int64_t>(kTrials))
                    .set("corrupted", static_cast<std::int64_t>(s.corrupted))
                    .set("detected", static_cast<std::int64_t>(s.detected))
                    .set("detection_rate", detect_rate)
                    .set("escape_rate", escape_rate)
                    .set("analytic_escape_bound", bound)
                    .set("mean_cert_steps", mean_steps)
                    .set("p50_cert_steps", cuts[0])
                    .set("p99_cert_steps", cuts[1]));

    if (level > 0 && s.detected < stats[level - 1].detected) {
      std::printf("GATE: detection not monotone at level %s\n", name.c_str());
      ++violations;
    }
    if (level < 2 && mean_steps >= full_mean) {
      std::printf("GATE: level %s not strictly cheaper than full\n",
                  name.c_str());
      ++violations;
    }
    // The analytic bound is exact for a single swapped adjacent pair;
    // real corruptions span several violations, which only raises the
    // detection odds — so the measured escape rate must sit at or below
    // the bound plus sampling noise.
    if (escape_rate > bound + 0.05) {
      std::printf("GATE: level %s escape rate %.3f above bound %.3f\n",
                  name.c_str(), escape_rate, bound);
      ++violations;
    }
  }
  if (stats[2].detected != stats[2].corrupted) {
    std::printf("GATE: full level let %ld corrupted trial(s) escape\n",
                stats[2].corrupted - stats[2].detected);
    ++violations;
  }

  std::printf("adaptive certification dial: cycle-6 r=3 (%lld nodes),"
              " %ld trials, %ld corrupted\n\n",
              static_cast<long long>(n), kTrials, corrupted_trials);
  table.print();
  table.maybe_export_csv("BENCH_adaptive_cert");

  JsonValue root = JsonValue::object();
  root.set("bench", "adaptive_cert")
      .set("seed", static_cast<std::int64_t>(kSeed))
      .set("nodes", static_cast<std::int64_t>(n))
      .set("trials", static_cast<std::int64_t>(kTrials))
      .set("corrupted_trials", static_cast<std::int64_t>(corrupted_trials))
      .set("levels", std::move(levels))
      .set("gates_passed", violations == 0);
  export_json("BENCH_adaptive_cert", root);

  if (violations != 0) {
    std::printf("\n%d gate violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall gates passed: monotone detection, full-level"
              " completeness, sampled levels strictly cheaper\n");
  return 0;
}
