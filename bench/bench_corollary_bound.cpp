// Experiment E5 (Corollary to Theorem 1): the universal bound — any
// connected factor graph sorts N^r keys in at most 18(r-1)^2 N + o(r^2 N)
// steps via torus emulation.  The table shows each family's Theorem 1
// time against the universal bound (the bound must dominate) and the
// executable step count of the simulator for context.

#include <cstdio>

#include "bench_util.hpp"
#include "core/product_sort.hpp"
#include "product/snake_order.hpp"

namespace {

using namespace prodsort;
using bench::Table;
using bench::fmt;

}  // namespace

int main() {
  std::printf("E5: Corollary universal bound 18(r-1)^2 N\n\n");

  Table table({"factor", "N", "r", "Theorem1 time", "18(r-1)^2 N",
               "within bound", "exec steps"});
  bool all_within = true;
  for (const LabeledFactor& f : standard_factors()) {
    for (int r = 2; r <= 5; ++r) {
      const ProductGraph pg(f, r);
      if (pg.num_nodes() > 200000) continue;
      Machine m(pg, bench::random_keys(pg.num_nodes(), 2u));
      const SortReport report = sort_product_network(m);
      const double bound = corollary_bound(f.size(), r);
      const bool within = report.cost.formula_time <= bound + 1e-9;
      all_within = all_within && within;
      table.add_row({f.name, fmt(f.size()), fmt(r),
                     fmt(report.cost.formula_time), fmt(bound),
                     within ? "yes" : "NO", fmt(m.cost().exec_steps)});
    }
  }
  table.print();
  table.maybe_export_csv("corollary_bound");
  std::printf("\nAll families within the universal bound: %s\n",
              all_within ? "yes" : "NO");
  return all_within ? 0 : 1;
}
