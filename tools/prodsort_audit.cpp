// prodsort_audit — invariant-auditing sweep over every registered
// topology and sorter, the correctness wall behind the cost claims.
//
//   prodsort_audit [--quick] [--seed S] [--threads T] [--budget B]
//
// Four sections, each emitting machine-readable `AUDIT key=value` lines:
//
//   machine   unit-key product sorts (oracle, shearsort, snake-oet,
//             network-s2) and the hypercube bitonic baseline, run with a
//             StepAuditor attached (disjointness, locality/cost honesty,
//             memory discipline, lockstep race replay) plus sortedness
//             and Theorem-1 phase-count exactness;
//   block     the block-mode drivers under the same auditor;
//   packet    the packet simulator against shortest-path lower bounds
//             (analysis/packet_audit.hpp);
//   zero-one  0-1-principle certification of the comparator networks,
//             the sequence baselines, and the machine sort itself —
//             exhaustive for small widths, seeded-random beyond (the
//             report flags which, see sortnet/zero_one.hpp).
//
// Every machine/block run additionally chains a ScheduleRecorder in
// front of the StepAuditor and cross-checks that the schedule the
// dynamic auditor just exercised is also statically proven
// (staticcheck/static_prover.hpp).  The `AUDIT-STATIC` summary line
// reports the coverage: a blind spot (a dynamically audited schedule
// the static prover rejects or cannot analyze) fails the sweep.
//
// Exit status 0 iff every section is clean; violations also print as
// `AUDIT-VIOLATION` lines.  --quick shrinks the sweep for ctest (label
// `audit`); the full sweep is the CI configuration.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>
#include <random>
#include <string>

#include "analysis/packet_audit.hpp"
#include "analysis/step_auditor.hpp"
#include "core/hashing.hpp"
#include "staticcheck/schedule_ir.hpp"
#include "staticcheck/static_prover.hpp"
#include "baselines/batcher_sequence.hpp"
#include "baselines/bitonic_network.hpp"
#include "baselines/columnsort.hpp"
#include "baselines/oet_sort.hpp"
#include "baselines/shearsort.hpp"
#include "core/block_sort.hpp"
#include "core/product_sort.hpp"
#include "core/s2/network_s2.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "graph/labeled_factor.hpp"
#include "network/packet_sim.hpp"
#include "network/parallel_executor.hpp"
#include "product/gray_code.hpp"
#include "product/snake_order.hpp"
#include "product/subgraph_view.hpp"
#include "sortnet/batcher.hpp"
#include "sortnet/multiway_network.hpp"
#include "sortnet/zero_one.hpp"

using namespace prodsort;

namespace {

struct Options {
  bool quick = false;
  unsigned seed = 1;
  int threads = 4;
  std::int64_t budget = 1 << 16;  ///< sampled 0-1 inputs beyond exhaustive
};

struct Tally {
  long combos = 0;
  long violations = 0;
  long failures = 0;  ///< unsorted results, bound breaches, rejections

  void fail() {
    ++failures;
  }
};

// Static cross-check: every schedule the dynamic auditor exercises is
// recorded (ScheduleRecorder chained in front of the StepAuditor) and
// proven once per unique (graph, schedule hash) — identical schedules
// reached through different runs (e.g. the TMR re-run) are proofs
// served from cache, not re-derived.
struct StaticCross {
  long schedules = 0;  ///< dynamically audited runs recorded
  std::map<std::uint64_t, bool> unique;  ///< cache key -> all_proven
  long blind = 0;  ///< runs whose schedule the prover rejected

  void add(const ProductGraph& pg, const ScheduleIR& ir,
           bool cross_dimension) {
    ++schedules;
    const std::uint64_t key =
        mix64(graph_fingerprint(pg), ir.canonical_hash());
    const auto it = unique.find(key);
    bool proven;
    if (it != unique.end()) {
      proven = it->second;
    } else {
      StaticProverOptions options;
      options.allow_cross_dimension = cross_dimension;
      proven = prove_schedule(pg, ir, options).all_proven();
      unique.emplace(key, proven);
    }
    if (!proven) ++blind;
  }

  [[nodiscard]] long unproven() const {
    long count = 0;
    for (const auto& [key, proven] : unique) count += !proven;
    return count;
  }
};

void print_violations(Tally& tally, const char* section,
                      const StepAuditor& auditor) {
  tally.violations += auditor.violation_count();
  for (const Violation& v : auditor.violations())
    std::printf("AUDIT-VIOLATION section=%s kind=%s msg=\"%s\"\n", section,
                to_string(v.kind).c_str(), v.message.c_str());
}

std::vector<Key> random_keys(PNode count, std::mt19937_64& rng) {
  std::vector<Key> keys(static_cast<std::size_t>(count));
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000003);
  return keys;
}

// A width-n sorting network for NetworkS2: Batcher when n is a power of
// two, odd-even transposition otherwise.
ComparatorNetwork any_width_network(int n) {
  if ((n & (n - 1)) == 0) return odd_even_merge_sort_network(n);
  return odd_even_transposition_network(n);
}

// ---------------------------------------------------------------- machine

void audit_machine(const Options& opt, Tally& tally, StaticCross& cross) {
  const auto factors = standard_factors();
  const OracleS2 oracle;
  const ShearsortS2 shearsort;
  const SnakeOETS2 snake_oet;
  std::mt19937_64 rng(opt.seed);
  ParallelExecutor exec(opt.threads);

  struct Entry {
    const char* name;
    const S2Sorter* sorter;
    PNode cap;
    bool cross_dimension;
  };
  const PNode oracle_cap = opt.quick ? 4096 : 20000;
  const PNode shear_cap = opt.quick ? 700 : 2000;
  const PNode oet_cap = opt.quick ? 300 : 700;
  const PNode net_cap = opt.quick ? 200 : 350;
  const Entry entries[] = {
      {"oracle", &oracle, oracle_cap, false},
      {"shearsort", &shearsort, shear_cap, false},
      {"snake-oet", &snake_oet, oet_cap, false},
      {"network-s2", nullptr, net_cap, true},  // built per factor below
  };

  for (const LabeledFactor& factor : factors) {
    for (const Entry& entry : entries) {
      // NetworkS2 is width-bound to N^2; construct per factor.
      const NetworkS2 net_s2(any_width_network(
          static_cast<int>(factor.size()) * static_cast<int>(factor.size())));
      const S2Sorter& sorter =
          entry.sorter != nullptr ? *entry.sorter
                                  : static_cast<const S2Sorter&>(net_s2);
      for (int r = 2; r <= 6 && pow_int(factor.size(), r) <= entry.cap; ++r) {
        const ProductGraph pg(factor, r);
        AuditorConfig config;
        config.check_lockstep = true;
        config.throw_on_violation = false;
        config.allow_cross_dimension = entry.cross_dimension;
        StepAuditor auditor(pg, config);

        // Audit each shape both plain and under TMR voting: fault-free
        // TMR must be bit-identical in outcome and keep the phase-count
        // predictions, while every phase lands in the auditor's
        // tmr_phases blind-spot counter (replica evaluations are voted
        // away before the observer sees the pairs).
        for (const bool tmr : {false, true}) {
          if (tmr && pg.num_nodes() > entry.cap / 2) continue;
          auditor.reset();
          Machine machine(pg, random_keys(pg.num_nodes(), rng), &exec);
          machine.set_tmr(tmr);
          ScheduleRecorder recorder(pg, &auditor);
          machine.set_observer(&recorder);
          SortOptions options;
          options.s2 = &sorter;
          const SortReport report = sort_product_network(machine, options);
          cross.add(pg, recorder.take(), entry.cross_dimension);

          const bool sorted = machine.snake_sorted(full_view(pg));
          const bool exact =
              report.cost.s2_phases == report.predicted.s2_phases &&
              report.cost.routing_phases == report.predicted.routing_phases;
          const bool blind_spot_counted =
              auditor.stats().tmr_phases == (tmr ? auditor.stats().phases : 0);
          ++tally.combos;
          if (!sorted || !exact || !blind_spot_counted) tally.fail();
          print_violations(tally, "machine", auditor);
          std::printf(
              "AUDIT section=machine factor=%s N=%d r=%d sorter=%s phases=%lld"
              " pairs=%lld lockstep=%lld faulty=%lld replay_skipped=%lld"
              " tmr=%lld max_resident=%d sorted=%d exact=%d violations=%lld\n",
              factor.name.c_str(), static_cast<int>(factor.size()), r,
              entry.name, static_cast<long long>(auditor.stats().phases),
              static_cast<long long>(auditor.stats().pairs),
              static_cast<long long>(auditor.stats().lockstep_replays),
              static_cast<long long>(auditor.stats().faulty_phases),
              static_cast<long long>(auditor.stats().replay_skipped),
              static_cast<long long>(auditor.stats().tmr_phases),
              auditor.stats().max_resident_values, sorted ? 1 : 0,
              exact ? 1 : 0,
              static_cast<long long>(auditor.violation_count()));
        }
      }
    }
  }

  // The Section 5.3 baseline: bitonic sort executed on the hypercube
  // machine, comparators between adjacent nodes (strict discipline).
  for (int r = 2; r <= (opt.quick ? 6 : 9); ++r) {
    const ProductGraph pg(labeled_k2(), r);
    AuditorConfig config;
    config.check_lockstep = true;
    config.throw_on_violation = false;
    StepAuditor auditor(pg, config);
    Machine machine(pg, random_keys(pg.num_nodes(), rng), &exec);
    ScheduleRecorder recorder(pg, &auditor);
    machine.set_observer(&recorder);
    const int depth = bitonic_sort_on_hypercube(machine);
    cross.add(pg, recorder.take(), /*cross_dimension=*/false);
    bool sorted = true;
    for (PNode v = 0; v + 1 < pg.num_nodes(); ++v)
      sorted = sorted && machine.key(v) <= machine.key(v + 1);
    ++tally.combos;
    if (!sorted) tally.fail();
    print_violations(tally, "machine", auditor);
    std::printf(
        "AUDIT section=machine factor=k2 N=2 r=%d sorter=bitonic-baseline"
        " phases=%lld pairs=%lld lockstep=%lld faulty=%lld replay_skipped=%lld"
        " tmr=%lld max_resident=%d depth=%d sorted=%d violations=%lld\n",
        r, static_cast<long long>(auditor.stats().phases),
        static_cast<long long>(auditor.stats().pairs),
        static_cast<long long>(auditor.stats().lockstep_replays),
        static_cast<long long>(auditor.stats().faulty_phases),
        static_cast<long long>(auditor.stats().replay_skipped),
        static_cast<long long>(auditor.stats().tmr_phases),
        auditor.stats().max_resident_values, depth, sorted ? 1 : 0,
        static_cast<long long>(auditor.violation_count()));
  }
}

// ------------------------------------------------------------------ block

void audit_block(const Options& opt, Tally& tally, StaticCross& cross) {
  const auto factors = standard_factors();
  const BlockOracleS2 block_oracle;
  const BlockShearsortS2 block_shearsort;
  const BlockSnakeOETS2 block_oet;
  std::mt19937_64 rng(opt.seed + 1);
  ParallelExecutor exec(opt.threads);

  struct Entry {
    const char* name;
    const BlockS2Sorter* sorter;
    PNode cap;  ///< node cap (keys = nodes * block)
  };
  const Entry entries[] = {
      {"block-oracle", &block_oracle, opt.quick ? PNode{1024} : PNode{4096}},
      {"block-shearsort", &block_shearsort,
       opt.quick ? PNode{128} : PNode{512}},
      {"block-snake-oet", &block_oet, opt.quick ? PNode{64} : PNode{256}},
  };
  const int block = 4;

  for (const LabeledFactor& factor : factors) {
    for (const Entry& entry : entries) {
      for (int r = 2; r <= 4 && pow_int(factor.size(), r) <= entry.cap; ++r) {
        const ProductGraph pg(factor, r);
        AuditorConfig config;
        config.check_lockstep = true;
        config.throw_on_violation = false;
        StepAuditor auditor(pg, config);

        BlockMachine machine(pg, random_keys(pg.num_nodes() * block, rng),
                             block, &exec);
        ScheduleRecorder recorder(pg, &auditor);
        machine.set_observer(&recorder);
        BlockSortOptions options;
        options.s2 = entry.sorter;
        const BlockSortReport report = sort_block_network(machine, options);
        cross.add(pg, recorder.take(), /*cross_dimension=*/false);

        const bool sorted = machine.snake_sorted(full_view(pg));
        const bool exact =
            report.cost.s2_phases == report.predicted.s2_phases &&
            report.cost.routing_phases == report.predicted.routing_phases;
        ++tally.combos;
        if (!sorted || !exact) tally.fail();
        print_violations(tally, "block", auditor);
        std::printf(
            "AUDIT section=block factor=%s N=%d r=%d b=%d sorter=%s"
            " phases=%lld pairs=%lld lockstep=%lld faulty=%lld"
            " replay_skipped=%lld max_resident=%d sorted=%d"
            " exact=%d violations=%lld\n",
            factor.name.c_str(), static_cast<int>(factor.size()), r, block,
            entry.name, static_cast<long long>(auditor.stats().phases),
            static_cast<long long>(auditor.stats().pairs),
            static_cast<long long>(auditor.stats().lockstep_replays),
            static_cast<long long>(auditor.stats().faulty_phases),
            static_cast<long long>(auditor.stats().replay_skipped),
            auditor.stats().max_resident_values, sorted ? 1 : 0, exact ? 1 : 0,
            static_cast<long long>(auditor.violation_count()));
      }
    }
  }
}

// ----------------------------------------------------------------- packet

void audit_packet(const Options& opt, Tally& tally) {
  std::mt19937_64 rng(opt.seed + 2);
  for (const LabeledFactor& factor : standard_factors()) {
    // Factor-graph permutation.
    {
      std::vector<NodeId> dest(static_cast<std::size_t>(factor.size()));
      std::iota(dest.begin(), dest.end(), 0);
      std::shuffle(dest.begin(), dest.end(), rng);
      const PacketStats stats = simulate_permutation(factor.graph, dest);
      const PacketAuditReport report =
          audit_permutation_stats(factor.graph, dest, stats);
      ++tally.combos;
      if (!report.ok) {
        tally.fail();
        std::printf("AUDIT-VIOLATION section=packet factor=%s msg=\"%s\"\n",
                    factor.name.c_str(), report.message.c_str());
      }
      std::printf(
          "AUDIT section=packet factor=%s kind=factor steps=%d steps_lb=%d"
          " hops=%lld hops_lb=%lld ok=%d\n",
          factor.name.c_str(), stats.steps, report.steps_lower_bound,
          static_cast<long long>(stats.total_hops),
          static_cast<long long>(report.hops_lower_bound), report.ok ? 1 : 0);
    }
    // Product permutation (dimension-order routing), r = 2.
    const ProductGraph pg(factor, 2);
    if (pg.num_nodes() > (opt.quick ? 256 : 4096)) continue;
    std::vector<PNode> dest(static_cast<std::size_t>(pg.num_nodes()));
    std::iota(dest.begin(), dest.end(), 0);
    std::shuffle(dest.begin(), dest.end(), rng);
    const PacketStats stats = simulate_product_permutation(pg, dest);
    const PacketAuditReport report =
        audit_product_permutation_stats(pg, dest, stats);
    ++tally.combos;
    if (!report.ok) {
      tally.fail();
      std::printf("AUDIT-VIOLATION section=packet factor=%s msg=\"%s\"\n",
                  factor.name.c_str(), report.message.c_str());
    }
    std::printf(
        "AUDIT section=packet factor=%s kind=product r=2 steps=%d steps_lb=%d"
        " hops=%lld hops_lb=%lld ok=%d\n",
        factor.name.c_str(), stats.steps, report.steps_lower_bound,
        static_cast<long long>(stats.total_hops),
        static_cast<long long>(report.hops_lower_bound), report.ok ? 1 : 0);
  }
}

// --------------------------------------------------------------- zero-one

void report_certificate(Tally& tally, const char* target,
                        const std::string& detail,
                        const ZeroOneCertificate& cert) {
  ++tally.combos;
  if (!cert.certified()) {
    tally.fail();
    std::string witness;
    for (const Key k : cert.witness) witness += k != 0 ? '1' : '0';
    std::printf("AUDIT-VIOLATION section=zero-one target=%s witness=%s\n",
                target, witness.c_str());
  }
  std::printf(
      "AUDIT section=zero-one target=%s %s inputs=%lld exhaustive=%d"
      " certified=%d\n",
      target, detail.c_str(), static_cast<long long>(cert.inputs_tested),
      cert.exhaustive ? 1 : 0, cert.certified() ? 1 : 0);
}

void certify_zero_one_sweep(const Options& opt, Tally& tally) {
  const std::int64_t budget = opt.quick ? 2048 : opt.budget;

  // Comparator networks (exhaustive at these widths).
  for (const int n : {4, 8, 16}) {
    const ComparatorNetwork oem = odd_even_merge_sort_network(n);
    report_certificate(tally, "batcher-oem", "width=" + std::to_string(n),
                       certify_zero_one(
                           n, [&](std::span<Key> v) { oem.apply(v); }, budget,
                           opt.seed));
    const ComparatorNetwork bitonic = bitonic_sort_network(n);
    report_certificate(tally, "bitonic", "width=" + std::to_string(n),
                       certify_zero_one(
                           n, [&](std::span<Key> v) { bitonic.apply(v); },
                           budget, opt.seed));
  }
  for (const int n : {6, 9}) {
    const ComparatorNetwork oet = odd_even_transposition_network(n);
    report_certificate(tally, "oet-network", "width=" + std::to_string(n),
                       certify_zero_one(
                           n, [&](std::span<Key> v) { oet.apply(v); }, budget,
                           opt.seed));
  }
  {
    struct Shape {
      int n, r;
    };
    for (const Shape s : {Shape{2, 3}, Shape{3, 2}, Shape{4, 2}}) {
      const ComparatorNetwork net = multiway_sort_network(s.n, s.r);
      report_certificate(
          tally, "multiway-sort",
          "N=" + std::to_string(s.n) + " r=" + std::to_string(s.r) +
              " width=" + std::to_string(net.width()),
          certify_zero_one(
              net.width(), [&](std::span<Key> v) { net.apply(v); }, budget,
              opt.seed));
    }
  }

  // Sequence baselines (oblivious ones only; samplesort is data-dependent
  // and outside the 0-1 principle's scope).
  report_certificate(tally, "shearsort-seq", "rows=4 cols=4",
                     certify_zero_one(
                         16,
                         [](std::span<Key> v) {
                           std::vector<Key> keys(v.begin(), v.end());
                           shearsort(keys, 4, 4);
                           const auto seq = snake_to_sequence(keys, 4, 4);
                           std::copy(seq.begin(), seq.end(), v.begin());
                         },
                         budget, opt.seed));
  report_certificate(tally, "columnsort-seq", "rows=8 cols=2",
                     certify_zero_one(
                         16,
                         [](std::span<Key> v) {
                           std::vector<Key> keys(v.begin(), v.end());
                           columnsort(keys, 8, 2);
                           std::copy(keys.begin(), keys.end(), v.begin());
                         },
                         budget, opt.seed));
  report_certificate(tally, "batcher-seq", "width=16",
                     certify_zero_one(
                         16, [](std::span<Key> v) { (void)batcher_sort(v); },
                         budget, opt.seed));
  report_certificate(tally, "oet-seq", "width=10",
                     certify_zero_one(
                         10,
                         [](std::span<Key> v) {
                           (void)odd_even_transposition_sort(v);
                         },
                         budget, opt.seed));

  // The machine sort itself as a width-N^r oblivious algorithm:
  // exhaustive on the small products, seeded-random on path(3)^3.
  const ShearsortS2 shearsort_s2;
  const SnakeOETS2 snake_oet_s2;
  struct MachineCase {
    const char* name;
    LabeledFactor factor;
    int r;
    const S2Sorter* s2;
    std::int64_t budget;  ///< 0 = exhaustive width permitting
  };
  const std::int64_t sampled = opt.quick ? 512 : 8192;
  const MachineCase cases[] = {
      {"product-sort", labeled_path(3), 2, &shearsort_s2, 0},
      {"product-sort", labeled_path(3), 2, &snake_oet_s2, 0},
      {"product-sort", labeled_k2(), 3, &shearsort_s2, 0},
      {"product-sort", labeled_path(4), 2, &shearsort_s2, 0},
      {"product-sort", labeled_path(3), 3, &shearsort_s2, sampled},
  };
  for (const MachineCase& c : cases) {
    const ProductGraph pg(c.factor, c.r);
    const int width = static_cast<int>(pg.num_nodes());
    const auto algorithm = [&](std::span<Key> v) {
      std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
      for (PNode rank = 0; rank < pg.num_nodes(); ++rank)
        keys[static_cast<std::size_t>(node_at_snake_rank(pg, rank))] =
            v[static_cast<std::size_t>(rank)];
      Machine machine(pg, std::move(keys));
      SortOptions options;
      options.s2 = c.s2;
      (void)sort_product_network(machine, options);
      const auto seq = machine.read_snake(full_view(pg));
      std::copy(seq.begin(), seq.end(), v.begin());
    };
    report_certificate(
        tally, c.name,
        "factor=" + c.factor.name + " r=" + std::to_string(c.r) +
            " sorter=" + c.s2->name() + " width=" + std::to_string(width),
        certify_zero_one(width, algorithm,
                         c.budget > 0 ? c.budget : budget, opt.seed));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      opt.seed = static_cast<unsigned>(std::atol(argv[++i]));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      opt.threads = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
      opt.budget = std::atol(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--seed S] [--threads T]"
                   " [--budget B]\n",
                   argv[0]);
      return 2;
    }
  }

  Tally tally;
  StaticCross cross;
  try {
    audit_machine(opt, tally, cross);
    audit_block(opt, tally, cross);
    audit_packet(opt, tally);
    certify_zero_one_sweep(opt, tally);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // Static/dynamic cross-check: every schedule the auditor exercised
  // must also be statically proven — a blind spot is a failure.
  const long unproven = cross.unproven();
  if (unproven > 0 || cross.blind > 0) tally.fail();
  std::printf(
      "AUDIT-STATIC schedules=%ld unique=%zu proven=%zu unproven=%ld"
      " blind=%ld static=%s\n",
      cross.schedules, cross.unique.size(),
      cross.unique.size() - static_cast<std::size_t>(unproven), unproven,
      cross.blind, unproven == 0 && cross.blind == 0 ? "clean" : "DIRTY");

  const bool clean = tally.violations == 0 && tally.failures == 0;
  std::printf("AUDIT-SUMMARY combos=%ld violations=%ld failures=%ld status=%s\n",
              tally.combos, tally.violations, tally.failures,
              clean ? "clean" : "DIRTY");
  return clean ? 0 : 1;
}
