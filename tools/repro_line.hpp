#pragma once

// ReproLine — shared parser for the machine-readable reproduction
// lines the tools print (FAULT-REPRO, SDC-REPRO, SERVICE-REPRO).
//
// A repro line is a sequence of space-separated `key=value` tokens;
// values never contain spaces (FaultModel::schedule_string and friends
// guarantee this).  The same line must round-trip through a shell —
// `--repro` accepts it either as one quoted argument or shell-split
// into many — so rejoin_args() glues an argv tail back together with
// single spaces before parsing.
//
// Lookup is linear per call: repro lines are a few hundred bytes and
// parsed once per process, so an index would be noise.  Unknown tokens
// are ignored by design (lines carry diagnostic fields like `reason=`
// that replay does not consume), and the first occurrence of a key
// wins, matching the historical per-tool parsers this header replaces.

#include <stdexcept>
#include <string>
#include <string_view>

namespace prodsort {

class ReproLine {
 public:
  explicit ReproLine(std::string line) : line_(std::move(line)) {}

  [[nodiscard]] const std::string& line() const noexcept { return line_; }

  /// Value of the first `key=value` token, or "" when the key is
  /// absent (an empty value and an absent key are indistinguishable —
  /// use has() to tell them apart).
  [[nodiscard]] std::string get(std::string_view key) const {
    std::string value;
    (void)find(key, &value);
    return value;
  }

  /// True iff a `key=` token is present (even with an empty value).
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key, nullptr);
  }

  /// Like get(), but throws std::invalid_argument naming the missing
  /// key — for fields replay cannot proceed without.
  [[nodiscard]] std::string require(std::string_view key) const {
    std::string value;
    if (!find(key, &value))
      throw std::invalid_argument("repro line is missing required token '" +
                                  std::string(key) + "='");
    return value;
  }

  /// Rejoins argv[first..argc) into one space-separated line, undoing
  /// the shell's word splitting when the user pasted the repro line
  /// unquoted after --repro.
  [[nodiscard]] static std::string rejoin_args(int argc, char** argv,
                                               int first) {
    std::string line;
    for (int i = first; i < argc; ++i) {
      if (!line.empty()) line += ' ';
      line += argv[i];
    }
    return line;
  }

 private:
  bool find(std::string_view key, std::string* value) const {
    const std::string needle = std::string(key) + "=";
    std::size_t pos = 0;
    while (pos < line_.size()) {
      const std::size_t end = line_.find(' ', pos);
      const std::size_t len =
          (end == std::string::npos ? line_.size() : end) - pos;
      if (len >= needle.size() &&
          line_.compare(pos, needle.size(), needle) == 0) {
        if (value != nullptr)
          *value = line_.substr(pos + needle.size(), len - needle.size());
        return true;
      }
      pos = end == std::string::npos ? line_.size() : end + 1;
    }
    return false;
  }

  std::string line_;
};

}  // namespace prodsort
