// prodsort_staticcheck — static schedule analysis sweep: records the
// comparator schedule of every registered (topology, sorter, r) combo
// once, then proves its properties without executing on data.
//
//   prodsort_staticcheck [--quick] [--seed S] [--budget B]
//                        [--max-exhaustive W] [--json FILE]
//   prodsort_staticcheck --repro <STATIC-REPRO line>
//
// Per unique schedule (canonical hash — identical schedules reached
// through different shapes are analyzed once):
//
//   structure  prove_schedule: pair disjointness, one-dimension
//              locality / hop honesty, Section-4 two-value memory
//              bound.  A failed property prints its counterexamples as
//              STATIC-VIOLATION lines;
//   oblivious  the schedule is re-recorded from a different input
//              permutation and must hash identically (the recorder's
//              premise, checked rather than assumed);
//   zero-one   sortedness by the 0-1 principle over the snake-rank
//              lowering: exhaustive (a proof) up to --max-exhaustive
//              wires, seeded sampling beyond (STATIC-REPRO replays it
//              bit-identically).  Oracle-backed schedules are
//              structural-only — OracleS2 moves keys outside the
//              compare-exchange seam, so their recorded phases are not
//              the whole sort (counted as zero_one=skipped);
//   dataflow   dead comparators (relation domain + exact 0-1
//              activity), adjacent-phase fusion candidates, critical
//              path vs phase count, projected step savings.
//
// STATIC-TIMING measures what a clean proof buys at run time: the same
// schedule replayed with the per-phase disjointness sweep on vs
// Machine::set_statically_audited(true).
//
// Exit 0 iff every structural property is proven and no 0-1 check
// fails; --json writes the full machine-readable report (the CI
// artifact behind the staticcheck-sweep job).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "baselines/bitonic_network.hpp"
#include "core/block_sort.hpp"
#include "core/hashing.hpp"
#include "core/product_sort.hpp"
#include "core/s2/network_s2.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "graph/labeled_factor.hpp"
#include "product/gray_code.hpp"
#include "repro_line.hpp"
#include "sortnet/batcher.hpp"
#include "staticcheck/dataflow.hpp"
#include "staticcheck/schedule_ir.hpp"
#include "staticcheck/static_prover.hpp"
#include "staticcheck/zero_one_check.hpp"

using namespace prodsort;

namespace {

struct Options {
  bool quick = false;
  std::uint64_t seed = 1;
  std::int64_t budget = 4096;  ///< sampled 0-1 trials beyond exhaustive
  int max_exhaustive = 22;     ///< exhaustive 0-1 up to this many wires
  const char* json_path = nullptr;
};

// A width-n sorting network for NetworkS2 (same choice as prodsort_audit).
ComparatorNetwork any_width_network(int n) {
  if ((n & (n - 1)) == 0) return odd_even_merge_sort_network(n);
  return odd_even_transposition_network(n);
}

// Analysis of one unique schedule, cached by canonical hash.
struct Analysis {
  StaticProof proof;
  std::string zero_one;  ///< proven | sampled-clean | failed | skipped
  std::int64_t zero_one_inputs = 0;
  std::string witness;  ///< minimized 0-1 witness when failed
  DataflowReport dataflow;
};

struct Sweep {
  const Options& opt;
  std::map<std::uint64_t, Analysis> cache;
  long entries = 0;
  long structural_failures = 0;
  long zero_one_failures = 0;
  long oblivious_failures = 0;
  // Graphs outlive the sweep (analyses and timing hold references).
  std::vector<std::unique_ptr<ProductGraph>> graphs;
  // Largest non-oracle unit-key schedule, kept for the timing section.
  ScheduleIR timing_ir;
  const ProductGraph* timing_pg = nullptr;

  explicit Sweep(const Options& options) : opt(options) {}
};

void print_counterexamples(const char* property, const PropertyProof& proof) {
  for (const Violation& v : proof.counterexamples)
    std::printf("STATIC-VIOLATION property=%s kind=%s msg=\"%s\"\n", property,
                to_string(v.kind).c_str(), v.message.c_str());
}

const Analysis& analyze(Sweep& sweep, const ProductGraph& pg,
                        const ScheduleIR& ir, bool cross_dimension,
                        bool oracle, bool snake_wires, bool* cached) {
  // Keyed on (graph, schedule): the locality proof consults factor
  // distances, so a hash-identical schedule from a different factor
  // must be re-proven, not served from cache.
  const std::uint64_t hash = mix64(graph_fingerprint(pg), ir.canonical_hash());
  const auto it = sweep.cache.find(hash);
  if (it != sweep.cache.end()) {
    *cached = true;
    return it->second;
  }
  *cached = false;

  Analysis a;
  StaticProverOptions prover_options;
  prover_options.allow_cross_dimension = cross_dimension;
  a.proof = prove_schedule(pg, ir, prover_options);

  const LoweredSchedule lowered = lower_to_comparators(pg, ir, snake_wires);
  if (oracle) {
    a.zero_one = "skipped";
  } else {
    ZeroOneCheckOptions zo;
    zo.max_exhaustive_width = sweep.opt.max_exhaustive;
    zo.sample_budget = sweep.opt.budget;
    zo.seed = sweep.opt.seed;
    const ZeroOneCheckResult result = check_zero_one(lowered, zo);
    a.zero_one_inputs = result.cert.inputs_tested;
    if (!result.sorts()) {
      a.zero_one = "failed";
      for (const Key k : result.cert.witness) a.witness += k != 0 ? '1' : '0';
    } else {
      a.zero_one = result.proven() ? "proven" : "sampled-clean";
    }
  }

  DataflowOptions df;
  df.zero_one.max_exhaustive_width = sweep.opt.max_exhaustive;
  df.zero_one.seed = sweep.opt.seed;
  df.run_zero_one = !oracle;
  a.dataflow = analyze_dataflow(lowered, ir, df);

  return sweep.cache.emplace(hash, std::move(a)).first->second;
}

void report(Sweep& sweep, const ProductGraph& pg, const ScheduleIR& ir,
            bool cross_dimension, bool oracle, bool snake_wires,
            bool oblivious_ok) {
  bool cached = false;
  const Analysis& a =
      analyze(sweep, pg, ir, cross_dimension, oracle, snake_wires, &cached);
  ++sweep.entries;

  if (!cached) {
    if (!a.proof.all_proven()) {
      ++sweep.structural_failures;
      print_counterexamples("disjointness", a.proof.disjointness);
      print_counterexamples("locality", a.proof.locality);
      print_counterexamples("memory", a.proof.memory);
    }
    if (a.zero_one == "failed") {
      ++sweep.zero_one_failures;
      std::printf("STATIC-VIOLATION property=zero-one witness=%s\n",
                  a.witness.c_str());
    }
  }
  if (!oblivious_ok) {
    ++sweep.oblivious_failures;
    std::printf(
        "STATIC-VIOLATION property=oblivious msg=\"schedule hash depends on "
        "input keys (topology=%s sorter=%s)\"\n",
        ir.topology.c_str(), ir.sorter.c_str());
  }

  std::printf(
      "STATIC topology=%s sorter=%s block=%d nodes=%lld hash=%016llx"
      " phases=%lld pairs=%lld disjoint=%d local=%d memory=%d max_resident=%d"
      " zero_one=%s inputs=%lld dead=%lld dead_exact=%d fusions=%zu slack=%d"
      " saved_prune=%lld saved_fusion=%lld cached=%d\n",
      ir.topology.c_str(), ir.sorter.c_str(), ir.block_size,
      static_cast<long long>(ir.num_nodes),
      static_cast<unsigned long long>(a.proof.schedule_hash),
      static_cast<long long>(a.proof.phases),
      static_cast<long long>(a.proof.pairs), a.proof.disjointness.proven,
      a.proof.locality.proven, a.proof.memory.proven,
      a.proof.max_resident_values, a.zero_one.c_str(),
      static_cast<long long>(a.zero_one_inputs),
      static_cast<long long>(a.dataflow.dead_total()), a.dataflow.dead_exact,
      a.dataflow.fusions.size(), a.dataflow.slack,
      static_cast<long long>(a.dataflow.saved_steps_prune),
      static_cast<long long>(a.dataflow.saved_steps_fusion), cached ? 1 : 0);

  if (!cached && a.zero_one == "sampled-clean") {
    // Bit-identical replay recipe: same (schedule, seed, budget) -> same
    // sampled stream, same verdict (tools/repro_line.hpp grammar).
    std::printf(
        "STATIC-REPRO hash=%016llx factor=%s r=%d sorter=%s block=%d"
        " seed=%llu budget=%lld\n",
        static_cast<unsigned long long>(a.proof.schedule_hash),
        pg.factor().name.c_str(), pg.dims(), ir.sorter.c_str(), ir.block_size,
        static_cast<unsigned long long>(sweep.opt.seed),
        static_cast<long long>(sweep.opt.budget));
  }
}

// Re-records the unit-key schedule from a shuffled input and returns
// whether the hash matches `expected` — the data-obliviousness check.
bool oblivious_product(const ProductGraph& pg, const S2Sorter& s2,
                       std::uint64_t expected, std::mt19937_64& rng) {
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  std::iota(keys.begin(), keys.end(), Key{0});
  std::shuffle(keys.begin(), keys.end(), rng);
  Machine machine(pg, std::move(keys));
  ScheduleRecorder recorder(pg);
  machine.set_observer(&recorder);
  SortOptions options;
  options.s2 = &s2;
  (void)sort_product_network(machine, options);
  return recorder.take().canonical_hash() == expected;
}

ScheduleIR record_bitonic_schedule(const ProductGraph& pg) {
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  std::iota(keys.begin(), keys.end(), Key{0});
  Machine machine(pg, std::move(keys));
  ScheduleRecorder recorder(pg);
  machine.set_observer(&recorder);
  (void)bitonic_sort_on_hypercube(machine);
  ScheduleIR ir = recorder.take();
  ir.topology = "k2^" + std::to_string(pg.dims());
  ir.sorter = "bitonic-baseline";
  return ir;
}

void sweep_schedules(Sweep& sweep) {
  const Options& opt = sweep.opt;
  const auto factors = standard_factors();
  const OracleS2 oracle;
  const ShearsortS2 shearsort;
  const SnakeOETS2 snake_oet;
  const BlockOracleS2 block_oracle;
  const BlockShearsortS2 block_shearsort;
  const BlockSnakeOETS2 block_oet;
  std::mt19937_64 rng(opt.seed);

  struct UnitEntry {
    const S2Sorter* sorter;
    PNode cap;
    bool cross_dimension;
    bool oracle;
  };
  const UnitEntry unit_entries[] = {
      {&oracle, opt.quick ? PNode{512} : PNode{4096}, false, true},
      {&shearsort, opt.quick ? PNode{400} : PNode{2000}, false, false},
      {&snake_oet, opt.quick ? PNode{256} : PNode{700}, false, false},
      {nullptr, opt.quick ? PNode{128} : PNode{350}, true, false},
  };
  for (const LabeledFactor& factor : factors) {
    const NetworkS2 net_s2(any_width_network(
        static_cast<int>(factor.size()) * static_cast<int>(factor.size())));
    for (const UnitEntry& entry : unit_entries) {
      const S2Sorter& s2 = entry.sorter != nullptr
                               ? *entry.sorter
                               : static_cast<const S2Sorter&>(net_s2);
      for (int r = 2; r <= 6 && pow_int(factor.size(), r) <= entry.cap; ++r) {
        sweep.graphs.push_back(std::make_unique<ProductGraph>(factor, r));
        const ProductGraph& pg = *sweep.graphs.back();
        ScheduleIR ir = record_product_schedule(pg, s2);
        const bool oblivious =
            oblivious_product(pg, s2, ir.canonical_hash(), rng);
        report(sweep, pg, ir, entry.cross_dimension, entry.oracle,
               /*snake_wires=*/true, oblivious);
        if (!entry.oracle &&
            ir.num_nodes > sweep.timing_ir.num_nodes) {
          sweep.timing_ir = ir;
          sweep.timing_pg = &pg;
        }
      }
    }

    struct BlockEntry {
      const BlockS2Sorter* sorter;
      PNode cap;
      bool oracle;
    };
    const BlockEntry block_entries[] = {
        {&block_oracle, opt.quick ? PNode{256} : PNode{1024}, true},
        {&block_shearsort, opt.quick ? PNode{128} : PNode{512}, false},
        {&block_oet, opt.quick ? PNode{64} : PNode{256}, false},
    };
    for (const BlockEntry& entry : block_entries) {
      for (int r = 2; r <= 4 && pow_int(factor.size(), r) <= entry.cap; ++r) {
        sweep.graphs.push_back(std::make_unique<ProductGraph>(factor, r));
        const ProductGraph& pg = *sweep.graphs.back();
        const ScheduleIR ir = record_block_schedule(pg, *entry.sorter, 4);
        report(sweep, pg, ir, /*cross_dimension=*/false, entry.oracle,
               /*snake_wires=*/true, /*oblivious_ok=*/true);
      }
    }
  }

  // The Section 5.3 baseline: bitonic sort on the hypercube machine.
  // It sorts in node-id order, so the 0-1 lowering uses identity wires.
  for (int r = 2; r <= (opt.quick ? 6 : 9); ++r) {
    sweep.graphs.push_back(std::make_unique<ProductGraph>(labeled_k2(), r));
    const ProductGraph& pg = *sweep.graphs.back();
    const ScheduleIR ir = record_bitonic_schedule(pg);
    report(sweep, pg, ir, /*cross_dimension=*/false, /*oracle=*/false,
           /*snake_wires=*/false, /*oblivious_ok=*/true);
  }
}

void print_timing(const Sweep& sweep, std::mt19937_64& rng) {
  if (sweep.timing_pg == nullptr) return;
  const ProductGraph& pg = *sweep.timing_pg;
  const ScheduleIR& ir = sweep.timing_ir;

  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()));
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000003);

  // Interleave the two modes and keep the per-mode minimum: back-to-back
  // blocks drift (frequency scaling, cache state) on a long sweep, and
  // the minimum is the least-noise estimate of the replay cost.
  double ms[2] = {1e300, 1e300};
  const int reps = 5;
  for (int rep = -1; rep < reps; ++rep) {  // rep -1 is an untimed warm-up
    for (const bool statically_audited : {false, true}) {
      Machine machine(pg, keys);
      machine.set_check_disjoint(true);  // sweep on in both build types
      machine.set_statically_audited(statically_audited);
      const auto start = std::chrono::steady_clock::now();
      apply_schedule(machine, ir);
      const auto stop = std::chrono::steady_clock::now();
      if (rep < 0) continue;
      ms[statically_audited ? 1 : 0] = std::min(
          ms[statically_audited ? 1 : 0],
          std::chrono::duration<double, std::milli>(stop - start).count());
    }
  }
  std::printf(
      "STATIC-TIMING topology=%s sorter=%s nodes=%lld phases=%lld reps=%d"
      " dynamic_sweep_ms=%.3f statically_audited_ms=%.3f speedup=%.2f\n",
      ir.topology.c_str(), ir.sorter.c_str(),
      static_cast<long long>(ir.num_nodes),
      static_cast<long long>(ir.phases().size()), reps, ms[0], ms[1],
      ms[1] > 0 ? ms[0] / ms[1] : 0.0);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void write_json(const Sweep& sweep, bool clean) {
  std::FILE* f = std::fopen(sweep.opt.json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", sweep.opt.json_path);
    return;
  }
  std::fprintf(f, "{\n  \"schedules\": [\n");
  bool first = true;
  for (const auto& [hash, a] : sweep.cache) {
    std::fprintf(
        f,
        "%s    {\"hash\": \"%016llx\", \"phases\": %lld, \"pairs\": %lld,"
        " \"disjointness\": %s, \"locality\": %s, \"memory\": %s,"
        " \"max_resident\": %d, \"zero_one\": \"%s\", \"inputs\": %lld,"
        " \"witness\": \"%s\", \"dead\": %lld, \"dead_exact\": %s,"
        " \"fusions\": %zu, \"phase_count\": %d, \"critical_path\": %d,"
        " \"slack\": %d, \"saved_steps_prune\": %lld,"
        " \"saved_steps_fusion\": %lld}",
        first ? "" : ",\n",
        static_cast<unsigned long long>(a.proof.schedule_hash),
        static_cast<long long>(a.proof.phases),
        static_cast<long long>(a.proof.pairs),
        a.proof.disjointness.proven ? "true" : "false",
        a.proof.locality.proven ? "true" : "false",
        a.proof.memory.proven ? "true" : "false", a.proof.max_resident_values,
        json_escape(a.zero_one).c_str(),
        static_cast<long long>(a.zero_one_inputs),
        json_escape(a.witness).c_str(),
        static_cast<long long>(a.dataflow.dead_total()),
        a.dataflow.dead_exact ? "true" : "false", a.dataflow.fusions.size(),
        a.dataflow.phase_count, a.dataflow.critical_path, a.dataflow.slack,
        static_cast<long long>(a.dataflow.saved_steps_prune),
        static_cast<long long>(a.dataflow.saved_steps_fusion));
    first = false;
  }
  std::fprintf(f,
               "\n  ],\n  \"summary\": {\"entries\": %ld, \"unique\": %zu,"
               " \"structural_failures\": %ld, \"zero_one_failures\": %ld,"
               " \"oblivious_failures\": %ld, \"status\": \"%s\"}\n}\n",
               sweep.entries, sweep.cache.size(), sweep.structural_failures,
               sweep.zero_one_failures, sweep.oblivious_failures,
               clean ? "clean" : "DIRTY");
  std::fclose(f);
}

int replay(const std::string& line) {
  const ReproLine repro(line);
  const std::uint64_t hash =
      std::strtoull(repro.require("hash").c_str(), nullptr, 16);
  const std::string factor_name = repro.require("factor");
  const int r = std::atoi(repro.require("r").c_str());
  const std::string sorter = repro.require("sorter");
  const int block = std::atoi(repro.require("block").c_str());
  const std::uint64_t seed =
      std::strtoull(repro.require("seed").c_str(), nullptr, 10);
  const std::int64_t budget = std::atol(repro.require("budget").c_str());

  const auto factors = standard_factors();
  const LabeledFactor* factor = nullptr;
  for (const LabeledFactor& f : factors)
    if (f.name == factor_name) factor = &f;
  if (factor == nullptr) {
    std::fprintf(stderr, "error: unknown factor '%s'\n", factor_name.c_str());
    return 2;
  }
  const ProductGraph pg(*factor, r);

  ScheduleIR ir;
  bool snake_wires = true;
  if (sorter == "bitonic-baseline") {
    ir = record_bitonic_schedule(pg);
    snake_wires = false;
  } else if (block > 1) {
    const BlockShearsortS2 block_shearsort;
    const BlockSnakeOETS2 block_oet;
    const BlockS2Sorter* s2 = sorter == "block-shearsort"
                                  ? static_cast<const BlockS2Sorter*>(
                                        &block_shearsort)
                                  : sorter == "block-snake-oet"
                                        ? static_cast<const BlockS2Sorter*>(
                                              &block_oet)
                                        : nullptr;
    if (s2 == nullptr) {
      std::fprintf(stderr, "error: unknown block sorter '%s'\n",
                   sorter.c_str());
      return 2;
    }
    ir = record_block_schedule(pg, *s2, block);
  } else {
    const ShearsortS2 shearsort;
    const SnakeOETS2 snake_oet;
    const NetworkS2 net_s2(any_width_network(
        static_cast<int>(factor->size()) * static_cast<int>(factor->size())));
    const S2Sorter* s2 =
        sorter == "shearsort"
            ? static_cast<const S2Sorter*>(&shearsort)
            : sorter == "snake-oet"
                  ? static_cast<const S2Sorter*>(&snake_oet)
                  : sorter == "network-s2"
                        ? static_cast<const S2Sorter*>(&net_s2)
                        : nullptr;
    if (s2 == nullptr) {
      std::fprintf(stderr, "error: unknown sorter '%s'\n", sorter.c_str());
      return 2;
    }
    ir = record_product_schedule(pg, *s2);
  }

  const bool hash_match = ir.canonical_hash() == hash;
  const LoweredSchedule lowered = lower_to_comparators(pg, ir, snake_wires);
  ZeroOneCheckOptions zo;
  zo.max_exhaustive_width = 0;  // repro lines come from sampled runs
  zo.sample_budget = budget;
  zo.seed = seed;
  const ZeroOneCheckResult result = check_zero_one(lowered, zo);
  std::printf(
      "STATIC-REPRO-REPLAY hash=%016llx hash_match=%d certified=%d"
      " inputs=%lld exhaustive=%d\n",
      static_cast<unsigned long long>(ir.canonical_hash()), hash_match ? 1 : 0,
      result.sorts() ? 1 : 0,
      static_cast<long long>(result.cert.inputs_tested),
      result.cert.exhaustive ? 1 : 0);
  return hash_match && result.sorts() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
      opt.budget = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--max-exhaustive") == 0 && i + 1 < argc)
      opt.max_exhaustive = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      opt.json_path = argv[++i];
    else if (std::strcmp(argv[i], "--repro") == 0) {
      try {
        return replay(ReproLine::rejoin_args(argc, argv, i + 1));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--seed S] [--budget B]"
                   " [--max-exhaustive W] [--json FILE]"
                   " [--repro <STATIC-REPRO line>]\n",
                   argv[0]);
      return 2;
    }
  }

  Sweep sweep(opt);
  try {
    sweep_schedules(sweep);
    std::mt19937_64 rng(opt.seed + 7);
    print_timing(sweep, rng);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  long proven = 0, zero_one_proven = 0, zero_one_sampled = 0,
       zero_one_skipped = 0;
  std::int64_t dead_total = 0, saved_steps = 0;
  for (const auto& [hash, a] : sweep.cache) {
    proven += a.proof.all_proven();
    zero_one_proven += a.zero_one == "proven";
    zero_one_sampled += a.zero_one == "sampled-clean";
    zero_one_skipped += a.zero_one == "skipped";
    dead_total += a.dataflow.dead_total();
    saved_steps +=
        a.dataflow.saved_steps_prune + a.dataflow.saved_steps_fusion;
  }
  const bool clean = sweep.structural_failures == 0 &&
                     sweep.zero_one_failures == 0 &&
                     sweep.oblivious_failures == 0;
  std::printf(
      "STATIC-SUMMARY entries=%ld unique=%zu proven=%ld zero_one_proven=%ld"
      " zero_one_sampled=%ld zero_one_skipped=%ld dead=%lld saved_steps=%lld"
      " status=%s\n",
      sweep.entries, sweep.cache.size(), proven, zero_one_proven,
      zero_one_sampled, zero_one_skipped, static_cast<long long>(dead_total),
      static_cast<long long>(saved_steps), clean ? "clean" : "DIRTY");
  if (opt.json_path != nullptr) write_json(sweep, clean);
  return clean ? 0 : 1;
}
