// prodsort_stress — randomized differential stress harness.
//
//   prodsort_stress [--trials T] [--seed S] [--max-nodes M]
//
// Each trial draws a random factor family, dimension count, S2 sorter,
// block size, thread count, and input pattern; runs the network sort;
// and checks the result against std::sort.  Exits nonzero on the first
// mismatch with a reproduction line.  Intended for long soak runs; the
// default 200 trials take a few seconds.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

#include "core/block_sort.hpp"
#include "core/product_sort.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "product/snake_order.hpp"

using namespace prodsort;

namespace {

std::vector<Key> make_input(PNode total, int pattern, std::mt19937_64& rng) {
  std::vector<Key> keys(static_cast<std::size_t>(total));
  switch (pattern) {
    case 0: for (Key& k : keys) k = static_cast<Key>(rng()); break;
    case 1: for (Key& k : keys) k = static_cast<Key>(rng() & 1u); break;
    case 2: for (Key& k : keys) k = static_cast<Key>(rng() % 4); break;
    case 3: {
      PNode i = 0;
      for (Key& k : keys) k = total - (i++);
      break;
    }
    default: {
      PNode i = 0;
      for (Key& k : keys) k = (i++) % 7;
      break;
    }
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  long trials = 200;
  unsigned seed = 12345;
  PNode max_nodes = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
      trials = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<unsigned>(std::atol(argv[++i]));
    else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc)
      max_nodes = std::atol(argv[++i]);
    else {
      std::fprintf(stderr, "usage: %s [--trials T] [--seed S] [--max-nodes M]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto factors = standard_factors();
  const OracleS2 oracle;
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&oracle, &shear, &oet};
  std::mt19937_64 rng(seed);

  long executed = 0;
  for (long trial = 0; trial < trials; ++trial) {
    const auto& factor = factors[rng() % factors.size()];
    const int r = 2 + static_cast<int>(rng() % 4);
    if (pow_int(factor.size(), r) > max_nodes) continue;
    const ProductGraph pg(factor, r);
    const int pattern = static_cast<int>(rng() % 5);
    const int threads = 1 + static_cast<int>(rng() % 4);
    const int block = (rng() % 3 == 0) ? 1 + static_cast<int>(rng() % 8) : 1;
    const std::size_t sorter = rng() % 3;
    // Executable sorters are slow on big machines; keep them small.
    if (sorter != 0 && pg.num_nodes() > 2000) continue;
    if (block > 1 && pg.num_nodes() * block > 50000) continue;

    const auto keys = make_input(pg.num_nodes() * block, pattern, rng);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());

    ParallelExecutor exec(threads);
    std::vector<Key> got;
    if (block == 1) {
      Machine m(pg, keys, &exec);
      SortOptions options;
      options.s2 = sorters[sorter];
      (void)sort_product_network(m, options);
      got = m.read_snake(full_view(pg));
    } else {
      static const BlockOracleS2 block_oracle;
      static const BlockShearsortS2 block_shear;
      static const BlockSnakeOETS2 block_oet;
      const BlockS2Sorter* block_sorters[] = {&block_oracle, &block_shear,
                                              &block_oet};
      BlockMachine m(pg, keys, block, &exec);
      BlockSortOptions options;
      options.s2 = block_sorters[pg.num_nodes() <= 700 ? rng() % 3 : 0];
      (void)sort_block_network(m, options);
      got = m.read_snake(full_view(pg));
    }
    ++executed;

    if (got != expected) {
      std::printf("MISMATCH: factor=%s r=%d pattern=%d threads=%d block=%d"
                  " sorter=%zu seed=%u trial=%ld\n",
                  factor.name.c_str(), r, pattern, threads, block, sorter,
                  seed, trial);
      return 1;
    }
  }
  std::printf("stress: %ld/%ld trials executed, all sorted correctly\n",
              executed, trials);
  return 0;
}
