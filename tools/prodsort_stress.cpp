// prodsort_stress — randomized differential stress harness.
//
//   prodsort_stress [--trials T] [--seed S] [--max-nodes M]
//                   [--faults RATE] [--fault-seed F]
//
// Each trial draws a random factor family, dimension count, S2 sorter,
// block size, thread count, and input pattern; runs the network sort;
// and checks the result against std::sort.  Exits nonzero on the first
// mismatch with a reproduction line.  Intended for long soak runs; the
// default 200 trials take a few seconds.
//
// --faults RATE switches to the fault-tolerance soak: every trial runs
// an executable sorter under an attached FaultModel (compare-exchange
// message loss at RATE, one permanently failed non-cut link, one 4x
// straggler), recovers via verify_and_recover, and additionally soaks
// the packet simulator's retry/reroute path (transient drops at RATE)
// on the same factor.  A failing trial prints one machine-readable
// FAULT-REPRO line (seed/family/r/sorter/fault schedule) and exits 1.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <random>

#include "core/block_sort.hpp"
#include "core/product_sort.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "core/verify.hpp"
#include "network/packet_sim.hpp"
#include "product/snake_order.hpp"

using namespace prodsort;

namespace {

std::vector<Key> make_input(PNode total, int pattern, std::mt19937_64& rng) {
  std::vector<Key> keys(static_cast<std::size_t>(total));
  switch (pattern) {
    case 0: for (Key& k : keys) k = static_cast<Key>(rng()); break;
    case 1: for (Key& k : keys) k = static_cast<Key>(rng() & 1u); break;
    case 2: for (Key& k : keys) k = static_cast<Key>(rng() % 4); break;
    case 3: {
      PNode i = 0;
      for (Key& k : keys) k = total - (i++);
      break;
    }
    default: {
      PNode i = 0;
      for (Key& k : keys) k = (i++) % 7;
      break;
    }
  }
  return keys;
}

// The fault-tolerance soak: sort under injected faults, self-verify,
// recover, and cross-check the packet layer.  Returns 0 on success.
int run_fault_soak(long trials, unsigned seed, unsigned fault_seed,
                   double rate, PNode max_nodes) {
  const auto factors = standard_factors();
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&shear, &oet};
  const char* sorter_names[] = {"shearsort", "snake-oet"};
  std::mt19937_64 rng(seed);

  const PNode cap = std::min<PNode>(max_nodes, 2000);  // executable sorters
  long executed = 0, recovered = 0;
  std::int64_t total_retries = 0, total_reroutes = 0, total_recovery = 0;
  for (long trial = 0; trial < trials; ++trial) {
    const auto& factor = factors[rng() % factors.size()];
    // Largest r >= 2 that fits the executable-sorter budget; factors too
    // big even for r = 2 are skipped (none in standard_factors today).
    int r = 2;
    while (r < 6 && pow_int(factor.size(), r + 1) <= cap) ++r;
    if (pow_int(factor.size(), r) > cap) continue;
    const ProductGraph pg(factor, r);
    const int pattern = static_cast<int>(rng() % 5);
    const int threads = 1 + static_cast<int>(rng() % 4);
    const std::size_t sorter = rng() % 2;

    FaultConfig config;
    config.seed = fault_seed + static_cast<std::uint64_t>(trial) * 0x9e37;
    config.ce_drop_rate = rate;
    config.packet_drop_rate = rate;
    config.failed_links = 1;
    config.stragglers = 1;
    config.straggler_factor = 4;
    FaultModel fm(config);
    fm.select_stragglers(pg.num_nodes());

    const auto keys = make_input(pg.num_nodes(), pattern, rng);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());
    const std::uint64_t input_checksum = multiset_checksum(keys);

    ParallelExecutor exec(threads);
    Machine m(pg, keys, &exec);
    m.set_fault_model(&fm);
    SortOptions options;
    options.s2 = sorters[sorter];
    (void)sort_product_network(m, options);

    const RecoveryReport report = verify_and_recover(
        m, full_view(pg), {.expected_checksum = input_checksum});
    const auto got = m.read_snake(full_view(pg));
    ++executed;
    recovered += report.outcome == RecoveryOutcome::kRecovered;
    total_retries += m.cost().retries;
    total_recovery += report.recovery_steps;

    bool packet_ok = true;
    std::int64_t packet_retries = 0;
    try {
      // Packet-layer soak on the same factor: a random permutation must
      // deliver across the failed link and the lossy fabric.
      std::vector<NodeId> dest(static_cast<std::size_t>(factor.size()));
      std::iota(dest.begin(), dest.end(), 0);
      std::shuffle(dest.begin(), dest.end(), rng);
      const PacketStats stats = simulate_permutation(factor.graph, dest, &fm);
      packet_retries = stats.retries;
      total_reroutes += stats.reroutes;
    } catch (const std::exception&) {
      packet_ok = false;
    }
    total_retries += packet_retries;

    if (got != expected || !packet_ok) {
      std::printf(
          "FAULT-REPRO seed=%u fault-seed=%u family=%s r=%d pattern=%d"
          " threads=%d sorter=%s faults=%g schedule=%s trial=%ld"
          " outcome=%s packet=%s\n",
          seed, fault_seed, factor.name.c_str(), r, pattern, threads,
          sorter_names[sorter], rate, fm.schedule_string().c_str(), trial,
          to_string(report.outcome).c_str(), packet_ok ? "ok" : "FAILED");
      return 1;
    }
  }
  std::printf(
      "fault soak: %ld/%ld trials executed, all sorted correctly"
      " (%ld needed recovery; retries=%lld reroutes=%lld"
      " recovery_steps=%lld)\n",
      executed, trials, recovered,
      static_cast<long long>(total_retries),
      static_cast<long long>(total_reroutes),
      static_cast<long long>(total_recovery));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long trials = 200;
  unsigned seed = 12345;
  unsigned fault_seed = 1;
  double fault_rate = -1;
  PNode max_nodes = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
      trials = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<unsigned>(std::atol(argv[++i]));
    else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc)
      max_nodes = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc)
      fault_rate = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc)
      fault_seed = static_cast<unsigned>(std::atol(argv[++i]));
    else {
      std::fprintf(stderr,
                   "usage: %s [--trials T] [--seed S] [--max-nodes M]"
                   " [--faults RATE] [--fault-seed F]\n",
                   argv[0]);
      return 2;
    }
  }

  if (fault_rate >= 0)
    return run_fault_soak(trials, seed, fault_seed, fault_rate, max_nodes);

  const auto factors = standard_factors();
  const OracleS2 oracle;
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&oracle, &shear, &oet};
  std::mt19937_64 rng(seed);

  long executed = 0;
  for (long trial = 0; trial < trials; ++trial) {
    const auto& factor = factors[rng() % factors.size()];
    const int r = 2 + static_cast<int>(rng() % 4);
    if (pow_int(factor.size(), r) > max_nodes) continue;
    const ProductGraph pg(factor, r);
    const int pattern = static_cast<int>(rng() % 5);
    const int threads = 1 + static_cast<int>(rng() % 4);
    const int block = (rng() % 3 == 0) ? 1 + static_cast<int>(rng() % 8) : 1;
    const std::size_t sorter = rng() % 3;
    // Executable sorters are slow on big machines; keep them small.
    if (sorter != 0 && pg.num_nodes() > 2000) continue;
    if (block > 1 && pg.num_nodes() * block > 50000) continue;

    const auto keys = make_input(pg.num_nodes() * block, pattern, rng);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());

    ParallelExecutor exec(threads);
    std::vector<Key> got;
    if (block == 1) {
      Machine m(pg, keys, &exec);
      SortOptions options;
      options.s2 = sorters[sorter];
      (void)sort_product_network(m, options);
      got = m.read_snake(full_view(pg));
    } else {
      static const BlockOracleS2 block_oracle;
      static const BlockShearsortS2 block_shear;
      static const BlockSnakeOETS2 block_oet;
      const BlockS2Sorter* block_sorters[] = {&block_oracle, &block_shear,
                                              &block_oet};
      BlockMachine m(pg, keys, block, &exec);
      BlockSortOptions options;
      options.s2 = block_sorters[pg.num_nodes() <= 700 ? rng() % 3 : 0];
      (void)sort_block_network(m, options);
      got = m.read_snake(full_view(pg));
    }
    ++executed;

    if (got != expected) {
      std::printf("MISMATCH: factor=%s r=%d pattern=%d threads=%d block=%d"
                  " sorter=%zu seed=%u trial=%ld\n",
                  factor.name.c_str(), r, pattern, threads, block, sorter,
                  seed, trial);
      return 1;
    }
  }
  std::printf("stress: %ld/%ld trials executed, all sorted correctly\n",
              executed, trials);
  return 0;
}
