// prodsort_stress — randomized differential stress harness.
//
//   prodsort_stress [--trials T] [--seed S] [--max-nodes M]
//                   [--faults RATE] [--fault-seed F]
//   prodsort_stress --chaos [--trials T] [--seed S] [--faults RATE]
//   prodsort_stress --sdc [--trials T] [--seed S] [--min-repair-rate R]
//                   [--cert-level spot|sampled|full] [--max-escape-rate R]
//   prodsort_stress --repro FAULT-REPRO mode=chaos ...
//   prodsort_stress --repro SDC-REPRO mode=sdc ...
//
// Each trial draws a random factor family, dimension count, S2 sorter,
// block size, thread count, and input pattern; runs the network sort;
// and checks the result against std::sort.  Exits nonzero on the first
// mismatch with a reproduction line.  Intended for long soak runs; the
// default 200 trials take a few seconds.
//
// --faults RATE switches to the fault-tolerance soak: every trial runs
// an executable sorter under an attached FaultModel (compare-exchange
// message loss at RATE, one permanently failed non-cut link, one 4x
// straggler), recovers via verify_and_recover, and additionally soaks
// the packet simulator's retry/reroute path (transient drops at RATE)
// on the same factor.  A failing trial prints one machine-readable
// FAULT-REPRO line (seed/family/r/sorter/fault schedule) and exits 1.
//
// --chaos combines every fault class with fail-stop node crashes: each
// trial hashes a crash schedule (1-3 crashes, restartable and
// permanent, at seed-hashed phases inside the probed sort length) on
// top of message loss and a straggler, runs the sort under the
// RecoveryController's escalation ladder, and demands a coherent
// outcome — either the exact sorted multiset, or (when both copies of
// a checkpoint entry crashed) a sorted output missing exactly the
// reported lost entries.  Trial derivation is trial-local (pure hashes
// of seed and trial index), so any failing trial replays standalone
// from its FAULT-REPRO line via --repro, which accepts the line
// verbatim (quoted or shell-split) and re-runs just that trial.
//
// --sdc is the silent-data-corruption soak: each trial schedules 1-4
// seed-hashed silently faulty comparators (stuck / inverted /
// arbitrary-output, windows probed to land inside the sort), sorts,
// and walks the detect-and-correct ladder — end-to-end certificate,
// bounded OET repair over the dirty window, TMR re-run, fault-free
// quarantine re-sort.  The soak fails the trial (one SDC-REPRO line,
// exit 1) on a silent escape (corrupted output the certificate
// passed) or an unrecovered exit; --min-repair-rate R additionally
// gates on the fraction of trials certify-and-repair resolved within
// the pass budget (pass on entry, or repaired in place) without
// escalating to the TMR / quarantine rungs.
//
// --cert-level runs the initial certificate at a graduated level
// (docs/FAULTS.md, "Adaptive certification"): sub-full levels scan a
// seeded sample of the adjacency pairs and fingerprint only every k-th
// trial, so a corrupted output the sample misses is a *budgeted*
// escape — counted and gated against --max-escape-rate (measured over
// corrupted trials) instead of failing the soak.  A sampled
// certificate that fails always escalates to a full one before the
// repair ladder runs.  At the default full level any escape is fatal,
// exactly as before.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <random>
#include <string>

#include "core/adaptive_cert.hpp"
#include "core/block_sort.hpp"
#include "core/certifier.hpp"
#include "core/hashing.hpp"
#include "core/product_sort.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "core/verify.hpp"
#include "network/packet_sim.hpp"
#include "network/recovery.hpp"
#include "product/snake_order.hpp"
#include "repro_line.hpp"

using namespace prodsort;

namespace {

std::vector<Key> make_input(PNode total, int pattern, std::mt19937_64& rng) {
  std::vector<Key> keys(static_cast<std::size_t>(total));
  switch (pattern) {
    case 0: for (Key& k : keys) k = static_cast<Key>(rng()); break;
    case 1: for (Key& k : keys) k = static_cast<Key>(rng() & 1u); break;
    case 2: for (Key& k : keys) k = static_cast<Key>(rng() % 4); break;
    case 3: {
      PNode i = 0;
      for (Key& k : keys) k = total - (i++);
      break;
    }
    default: {
      PNode i = 0;
      for (Key& k : keys) k = (i++) % 7;
      break;
    }
  }
  return keys;
}

// The fault-tolerance soak: sort under injected faults, self-verify,
// recover, and cross-check the packet layer.  Returns 0 on success.
int run_fault_soak(long trials, unsigned seed, unsigned fault_seed,
                   double rate, PNode max_nodes) {
  const auto factors = standard_factors();
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&shear, &oet};
  const char* sorter_names[] = {"shearsort", "snake-oet"};
  std::mt19937_64 rng(seed);

  const PNode cap = std::min<PNode>(max_nodes, 2000);  // executable sorters
  long executed = 0, recovered = 0;
  std::int64_t total_retries = 0, total_reroutes = 0, total_recovery = 0;
  for (long trial = 0; trial < trials; ++trial) {
    const auto& factor = factors[rng() % factors.size()];
    // Largest r >= 2 that fits the executable-sorter budget; factors too
    // big even for r = 2 are skipped (none in standard_factors today).
    int r = 2;
    while (r < 6 && pow_int(factor.size(), r + 1) <= cap) ++r;
    if (pow_int(factor.size(), r) > cap) continue;
    const ProductGraph pg(factor, r);
    const int pattern = static_cast<int>(rng() % 5);
    const int threads = 1 + static_cast<int>(rng() % 4);
    const std::size_t sorter = rng() % 2;

    FaultConfig config;
    config.seed = fault_seed + static_cast<std::uint64_t>(trial) * 0x9e37;
    config.ce_drop_rate = rate;
    config.packet_drop_rate = rate;
    config.failed_links = 1;
    config.stragglers = 1;
    config.straggler_factor = 4;
    FaultModel fm(config);
    fm.select_stragglers(pg.num_nodes());

    const auto keys = make_input(pg.num_nodes(), pattern, rng);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());
    const std::uint64_t input_checksum = multiset_checksum(keys);

    ParallelExecutor exec(threads);
    Machine m(pg, keys, &exec);
    m.set_fault_model(&fm);
    SortOptions options;
    options.s2 = sorters[sorter];
    (void)sort_product_network(m, options);

    const RecoveryReport report = verify_and_recover(
        m, full_view(pg), {.expected_checksum = input_checksum});
    const auto got = m.read_snake(full_view(pg));
    ++executed;
    recovered += report.outcome == RecoveryOutcome::kRecovered;
    total_retries += m.cost().retries;
    total_recovery += report.recovery_steps;

    bool packet_ok = true;
    std::int64_t packet_retries = 0;
    try {
      // Packet-layer soak on the same factor: a random permutation must
      // deliver across the failed link and the lossy fabric.
      std::vector<NodeId> dest(static_cast<std::size_t>(factor.size()));
      std::iota(dest.begin(), dest.end(), 0);
      std::shuffle(dest.begin(), dest.end(), rng);
      const PacketStats stats = simulate_permutation(factor.graph, dest, &fm);
      packet_retries = stats.retries;
      total_reroutes += stats.reroutes;
    } catch (const std::exception&) {
      packet_ok = false;
    }
    total_retries += packet_retries;

    if (got != expected || !packet_ok) {
      std::printf(
          "FAULT-REPRO seed=%u fault-seed=%u family=%s r=%d pattern=%d"
          " threads=%d sorter=%s faults=%g schedule=%s trial=%ld"
          " outcome=%s packet=%s\n",
          seed, fault_seed, factor.name.c_str(), r, pattern, threads,
          sorter_names[sorter], rate, fm.schedule_string().c_str(), trial,
          to_string(report.outcome).c_str(), packet_ok ? "ok" : "FAILED");
      return 1;
    }
  }
  std::printf(
      "fault soak: %ld/%ld trials executed, all sorted correctly"
      " (%ld needed recovery; retries=%lld reroutes=%lld"
      " recovery_steps=%lld)\n",
      executed, trials, recovered,
      static_cast<long long>(total_retries),
      static_cast<long long>(total_reroutes),
      static_cast<long long>(total_recovery));
  return 0;
}

// ----------------------------------------------------------- chaos soak

const char* const kChaosSorterNames[] = {"shearsort", "snake-oet"};

struct ChaosTrialSpec {
  const LabeledFactor* factor = nullptr;
  int r = 2;
  int pattern = 0;
  int threads = 1;
  int interval = 8;        ///< checkpoint interval (phases)
  std::size_t sorter = 0;  ///< index into kChaosSorterNames
  FaultConfig config;
  unsigned seed = 0;  ///< with `trial`, derives the input keys
  long trial = 0;
  /// SDC soak only: the level the initial certificate runs at.  Below
  /// kFull a corrupted output the sampled scan misses is a *budgeted*
  /// escape (counted, gated by --max-escape-rate), not a soak failure.
  CertLevel cert_level = CertLevel::kFull;
  std::uint64_t cert_seed = 0;  ///< 0 = derive from (seed, trial)
};

/// Trial-local sample seed for the sampled certificate — pure hash of
/// (seed, trial), so an SDC-REPRO line replays the exact pair sample.
std::uint64_t sdc_cert_seed(const ChaosTrialSpec& spec) {
  if (spec.cert_seed != 0) return spec.cert_seed;
  return mix64(mix64(spec.seed) ^ 0x63657274ULL,
               static_cast<std::uint64_t>(spec.trial));
}

/// The trial's certification plan at `spec.cert_level`: coverage and
/// fingerprint cadence from the AdaptiveCertConfig defaults, with the
/// trial index standing in for the job index in the every-k-th rule.
CertPlan sdc_cert_plan(const ChaosTrialSpec& spec) {
  const AdaptiveCertConfig defaults;
  const int level = static_cast<int>(spec.cert_level);
  CertPlan plan;
  plan.level = spec.cert_level;
  plan.coverage = defaults.coverage[level];
  plan.fingerprint =
      spec.trial % defaults.fingerprint_every[level] == 0;
  plan.sample_seed = sdc_cert_seed(spec);
  return plan;
}

// Trial-local input derivation: a pure function of (seed, trial,
// pattern), independent of every other trial, so --repro regenerates
// the exact keys from the FAULT-REPRO line alone.
std::vector<Key> chaos_input(const ChaosTrialSpec& spec, PNode total) {
  std::mt19937_64 rng(
      mix64(mix64(spec.seed), static_cast<std::uint64_t>(spec.trial)));
  return make_input(total, spec.pattern, rng);
}

struct ChaosTotals {
  long rollbacks = 0;
  long remaps = 0;
  long degraded_runs = 0;
  long data_loss_runs = 0;
  std::int64_t crashes = 0;
};

// Fault-free probe run that counts the sort's synchronous phases, so
// hashed crash phases always land inside the schedule.  An attached
// all-zero model only ticks the phase clock — results are
// bit-identical to no model.
std::int64_t chaos_probe_phases(const ProductGraph& pg,
                                const ChaosTrialSpec& spec,
                                const S2Sorter& sorter) {
  FaultConfig tick;  // all rates zero: the model only ticks the clock
  FaultModel clock(tick);
  Machine machine(pg, chaos_input(spec, pg.num_nodes()));
  machine.set_fault_model(&clock);
  SortOptions options;
  options.s2 = &sorter;
  (void)sort_product_network(machine, options);
  return machine.fault_phase();
}

// Runs one chaos trial end to end.  Returns 0 on a coherent outcome;
// otherwise prints the replayable FAULT-REPRO line and returns 1.
int run_chaos_trial(const ChaosTrialSpec& spec, ChaosTotals* totals) {
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&shear, &oet};

  const ProductGraph pg(*spec.factor, spec.r);
  const std::vector<Key> keys = chaos_input(spec, pg.num_nodes());
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());

  FaultModel fm(spec.config);
  if (spec.config.stragglers > 0) fm.select_stragglers(pg.num_nodes());
  ParallelExecutor exec(spec.threads);
  Machine machine(pg, keys, &exec);
  machine.set_fault_model(&fm);

  SortOptions options;
  options.s2 = sorters[spec.sorter];
  RecoveryController controller(machine,
                                {.checkpoint_interval = spec.interval});
  const CrashRecoveryReport report = controller.run(options);

  if (totals != nullptr) {
    totals->rollbacks += report.rollbacks;
    totals->remaps += report.remaps;
    totals->crashes += report.crashes;
    totals->degraded_runs += report.path == RecoveryPath::kDegradedRemap;
    totals->data_loss_runs += report.data_loss;
  }

  const char* reason = nullptr;
  if (!report.data_loss) {
    if (!report.sorted)
      reason = "unsorted";
    else if (report.output != expected)
      reason = "output-mismatch";
  } else {
    // Both copies of a checkpoint entry crashed: a legitimate chaos
    // outcome, but it must be reported coherently — sorted output with
    // exactly the lost entries' keys missing, nothing else.
    const bool coherent =
        report.sorted && !report.lost_entries.empty() &&
        report.output.size() + report.lost_entries.size() ==
            expected.size() &&
        std::includes(expected.begin(), expected.end(),
                      report.output.begin(), report.output.end());
    if (!coherent) reason = "incoherent-data-loss";
  }
  if (reason == nullptr) return 0;

  std::printf(
      "FAULT-REPRO mode=chaos seed=%u trial=%ld family=%s r=%d pattern=%d"
      " threads=%d sorter=%s interval=%d schedule=%s path=%s reason=%s\n",
      spec.seed, spec.trial, spec.factor->name.c_str(), spec.r, spec.pattern,
      spec.threads, kChaosSorterNames[spec.sorter], spec.interval,
      fm.schedule_string().c_str(), to_string(report.path).c_str(), reason);
  return 1;
}

int run_chaos_soak(long trials, unsigned seed, double rate, PNode max_nodes) {
  const auto factors = standard_factors();
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&shear, &oet};
  const PNode cap = std::min<PNode>(max_nodes, 1200);

  long executed = 0;
  ChaosTotals totals;
  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t h =
        mix64(mix64(seed) ^ 0x6368616f73ULL, static_cast<std::uint64_t>(trial));
    ChaosTrialSpec spec;
    spec.seed = seed;
    spec.trial = trial;
    spec.factor = &factors[h % factors.size()];
    int r = 2;
    while (r < 5 && pow_int(spec.factor->size(), r + 1) <= cap) ++r;
    if (pow_int(spec.factor->size(), r) > cap) continue;
    spec.r = r;
    spec.pattern = static_cast<int>(mix64(h, 1) % 5);
    spec.threads = 1 + static_cast<int>(mix64(h, 2) % 4);
    spec.sorter = static_cast<std::size_t>(mix64(h, 3) % 2);
    spec.interval = 2 + static_cast<int>(mix64(h, 4) % 12);

    const ProductGraph pg(*spec.factor, spec.r);
    const std::int64_t phases =
        chaos_probe_phases(pg, spec, *sorters[spec.sorter]);

    FaultConfig config;
    config.seed = mix64(h, 5);
    config.ce_drop_rate = rate;
    config.stragglers = 1;
    config.straggler_factor = 4;
    const int crashes = 1 + static_cast<int>(mix64(h, 6) % 3);
    for (int i = 0; i < crashes; ++i) {
      CrashEvent event;
      event.phase = static_cast<std::int64_t>(
          mix64(h, 16 + static_cast<std::uint64_t>(i)) %
          static_cast<std::uint64_t>(phases));
      event.node = static_cast<PNode>(
          mix64(h, 32 + static_cast<std::uint64_t>(i)) %
          static_cast<std::uint64_t>(pg.num_nodes()));
      event.permanent = (mix64(h, 48 + static_cast<std::uint64_t>(i)) & 1) != 0;
      config.crash_schedule.push_back(event);
    }
    spec.config = config;

    if (run_chaos_trial(spec, &totals) != 0) return 1;
    ++executed;
  }
  std::printf(
      "chaos soak: %ld/%ld trials executed, all outcomes coherent"
      " (crashes=%lld rollbacks=%ld remaps=%ld degraded_runs=%ld"
      " data_loss_runs=%ld)\n",
      executed, trials, static_cast<long long>(totals.crashes),
      totals.rollbacks, totals.remaps, totals.degraded_runs,
      totals.data_loss_runs);
  return 0;
}

// ------------------------------------------------------------- sdc soak

struct SdcTotals {
  long executed = 0;
  long fired_trials = 0;  ///< trials where >= 1 comparator fault fired
  long corrupted = 0;     ///< initial read-out differed from std::sort
  long detected = 0;      ///< initial certificate failed (SDC caught)
  long benign = 0;        ///< faults fired, output still certified-correct
  long repaired = 0;      ///< restored by bounded OET repair (rung 4)
  long tmr_masked = 0;    ///< restored by a TMR re-run
  long quarantined = 0;   ///< needed the fault-free re-sort
  long escapes = 0;       ///< corrupted output a sub-full cert passed
  long escalations = 0;   ///< sampled cert failed, full cert re-ran
  long repair_passes = 0;
  int max_repair_passes = 0;
};

// One SDC trial: sort under silently faulty comparators, then walk the
// detect-and-correct ladder.  Every exit is cross-checked against
// std::sort — a certificate that passes on a wrong output (silent
// escape or fingerprint collision) fails the trial.  Returns 0 on a
// coherent outcome; otherwise prints the replayable SDC-REPRO line.
int run_sdc_trial(const ChaosTrialSpec& spec, SdcTotals* totals) {
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&shear, &oet};

  const ProductGraph pg(*spec.factor, spec.r);
  const std::vector<Key> keys = chaos_input(spec, pg.num_nodes());
  std::vector<Key> expected = keys;
  std::sort(expected.begin(), expected.end());
  const ViewSpec view = full_view(pg);

  ParallelExecutor exec(spec.threads);
  const Certifier certifier(keys, &exec);

  FaultModel fm(spec.config);
  Machine machine(pg, keys, &exec);
  machine.set_fault_model(&fm);
  SortOptions options;
  options.s2 = sorters[spec.sorter];
  (void)sort_product_network(machine, options);

  std::vector<Key> got = machine.read_snake(view);
  const CertPlan plan = sdc_cert_plan(spec);
  EndToEndCertificate cert = certifier.certify_sampled(got, plan);
  bool escalated = false;
  if (!cert.pass() && plan.level != CertLevel::kFull) {
    // A sampled certificate never acts on its own verdict: the first
    // failure escalates to a full certificate and the ladder below
    // runs from the full dirty window.
    escalated = true;
    cert = certifier.certify(machine, view);
  }
  const bool corrupted = got != expected;
  const bool fired = fm.counters().comparator_faults > 0;
  // A corrupted output the sub-full certificate passed is the escape
  // the operator's budget priced in — counted and gated at the summary
  // (--max-escape-rate), not an immediate soak failure.  At full level
  // with the fingerprint taken there is no budget: any escape is fatal.
  const bool budgeted_escape =
      cert.pass() && corrupted &&
      (cert.level != CertLevel::kFull || !cert.fingerprint_checked);
  if (totals != nullptr) {
    ++totals->executed;
    totals->fired_trials += fired;
    totals->corrupted += corrupted;
    totals->detected += !cert.pass();
    totals->benign += fired && cert.pass() && !corrupted;
    totals->escapes += budgeted_escape;
    totals->escalations += escalated;
  }

  const char* rung = "none";
  const char* reason = nullptr;
  if (cert.pass()) {
    // The one unforgivable outcome: wrong output, passing *full*
    // certificate.  (A budgeted sampled-level escape returns clean.)
    if (corrupted && !budgeted_escape) reason = "silent-escape";
  } else {
    // Rung 4: bounded alternating-parity OET repair over the dirty
    // window, in place, still under the attached fault model.
    RepairOptions repair_options;
    repair_options.max_passes = static_cast<int>(pg.num_nodes()) + 4;
    const RepairReport repair =
        certify_and_repair(machine, view, certifier, repair_options);
    if (repair.outcome == RepairOutcome::kRepaired) {
      rung = "repair";
      got = machine.read_snake(view);
      if (totals != nullptr) {
        ++totals->repaired;
        totals->repair_passes += repair.passes;
        totals->max_repair_passes =
            std::max(totals->max_repair_passes, repair.passes);
      }
      if (got != expected) reason = "fingerprint-collision";
    } else {
      // Rung 5: TMR re-run — spatial redundancy outvotes any single
      // faulty comparator per pair, including multiset-corrupting ones
      // repair cannot touch.
      FaultModel tmr_fm(spec.config);
      Machine tmr_machine(pg, keys, &exec);
      tmr_machine.set_tmr(true);
      tmr_machine.set_fault_model(&tmr_fm);
      (void)sort_product_network(tmr_machine, options);
      if (certifier.certify(tmr_machine, view).pass()) {
        rung = "tmr";
        got = tmr_machine.read_snake(view);
        if (totals != nullptr) ++totals->tmr_masked;
        if (got != expected) reason = "fingerprint-collision";
      } else {
        // Rung 6: quarantine — re-sort the retained input fault-free.
        rung = "quarantine";
        Machine clean(pg, keys, &exec);
        (void)sort_product_network(clean, options);
        if (certifier.certify(clean, view).pass()) {
          got = clean.read_snake(view);
          if (totals != nullptr) ++totals->quarantined;
          if (got != expected) reason = "fingerprint-collision";
        } else {
          reason = "unrecovered";
        }
      }
    }
  }
  if (reason == nullptr) return 0;

  std::printf(
      "SDC-REPRO mode=sdc seed=%u trial=%ld family=%s r=%d pattern=%d"
      " threads=%d sorter=%s schedule=%s cert-level=%s cert-seed=%llu"
      " rung=%s reason=%s\n",
      spec.seed, spec.trial, spec.factor->name.c_str(), spec.r, spec.pattern,
      spec.threads, kChaosSorterNames[spec.sorter],
      fm.schedule_string().c_str(), to_string(spec.cert_level).c_str(),
      static_cast<unsigned long long>(sdc_cert_seed(spec)), rung, reason);
  return 1;
}

int run_sdc_soak(long trials, unsigned seed, PNode max_nodes,
                 double min_repair_rate, CertLevel cert_level,
                 double max_escape_rate) {
  const auto factors = standard_factors();
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&shear, &oet};
  const PNode cap = std::min<PNode>(max_nodes, 1000);

  SdcTotals totals;
  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t h =
        mix64(mix64(seed) ^ 0x736463ULL, static_cast<std::uint64_t>(trial));
    ChaosTrialSpec spec;
    spec.seed = seed;
    spec.trial = trial;
    spec.factor = &factors[h % factors.size()];
    int r = 2;
    while (r < 5 && pow_int(spec.factor->size(), r + 1) <= cap) ++r;
    if (pow_int(spec.factor->size(), r) > cap) continue;
    spec.r = r;
    spec.pattern = static_cast<int>(mix64(h, 1) % 5);
    spec.threads = 1 + static_cast<int>(mix64(h, 2) % 4);
    spec.sorter = static_cast<std::size_t>(mix64(h, 3) % 2);
    spec.cert_level = cert_level;

    const ProductGraph pg(*spec.factor, spec.r);
    const std::int64_t phases =
        chaos_probe_phases(pg, spec, *sorters[spec.sorter]);

    // 1-4 silently faulty comparators: nodes, windows, and kinds all
    // seed-hashed.  The baseline mix is transient stuck/inverted faults
    // whose windows close inside the probed sort length — multiset-
    // preserving disorder that rung-4 repair fixes in place once the
    // window has passed.  A rare per-trial escalation tail (1 in 128
    // each) swaps in an arbitrary-output fault (corrupts the key
    // multiset; repair cannot help) or makes a fault permanent (stays
    // live through the repair passes and keeps re-dirtying them), so
    // the TMR and quarantine rungs are exercised while the soak stays
    // inside the certify-and-repair >= 95% acceptance gate.
    FaultConfig config;
    config.seed = mix64(h, 5);
    const int faults = 1 + static_cast<int>(mix64(h, 6) % 4);
    const std::uint64_t tail = mix64(h, 7) % 128;
    for (int i = 0; i < faults; ++i) {
      const auto fi = static_cast<std::uint64_t>(i);
      ComparatorFault fault;
      fault.node = static_cast<PNode>(
          mix64(h, 64 + fi) % static_cast<std::uint64_t>(pg.num_nodes()));
      fault.from_phase = static_cast<std::int64_t>(
          mix64(h, 80 + fi) % static_cast<std::uint64_t>(phases));
      fault.until_phase =
          fault.from_phase + 1 +
          static_cast<std::int64_t>(
              mix64(h, 96 + fi) %
              static_cast<std::uint64_t>(phases - fault.from_phase));
      fault.kind = (mix64(h, 112 + fi) & 1) != 0
                       ? ComparatorFaultKind::kInverted
                       : ComparatorFaultKind::kStuckPassThrough;
      if (i == 0 && tail == 0) fault.kind = ComparatorFaultKind::kArbitrary;
      if (i == 0 && tail == 1) fault.until_phase = -1;
      config.comparator_schedule.push_back(fault);
    }
    spec.config = config;

    if (run_sdc_trial(spec, &totals) != 0) return 1;
  }

  // The acceptance rate: trials certify-and-repair resolved within the
  // pass budget (certificate passed on entry, or wrong order repaired
  // in place) over all executed trials; the remainder escalated to the
  // TMR / quarantine rungs — and, this line having been reached, every
  // one of those also ended with a verified sorted snake.
  const long escalated = totals.tmr_masked + totals.quarantined;
  const double rate =
      totals.executed == 0
          ? 1.0
          : static_cast<double>(totals.executed - escalated) /
                static_cast<double>(totals.executed);
  // At sub-full levels the soak reports the *measured* escape rate —
  // corrupted outputs the sampled certificate passed, over all
  // corrupted trials — against the operator's --max-escape-rate bound.
  // At full level the bound is implicitly zero (a full escape already
  // failed the run above), so the gate is a consistency check.
  const double escape_rate =
      totals.corrupted == 0
          ? 0.0
          : static_cast<double>(totals.escapes) /
                static_cast<double>(totals.corrupted);
  std::printf(
      "sdc soak: %ld/%ld trials executed at cert-level=%s, zero silent"
      " escapes beyond budget"
      " (fired=%ld corrupted=%ld detected=%ld benign=%ld | repaired=%ld"
      " tmr=%ld quarantined=%ld | escapes=%ld escalations=%ld"
      " escape-rate=%.3f | repair passes mean=%.1f max=%d |"
      " certify-and-repair rate=%.3f)\n",
      totals.executed, trials, to_string(cert_level).c_str(),
      totals.fired_trials, totals.corrupted, totals.detected, totals.benign,
      totals.repaired, totals.tmr_masked, totals.quarantined, totals.escapes,
      totals.escalations, escape_rate,
      totals.repaired > 0 ? static_cast<double>(totals.repair_passes) /
                                static_cast<double>(totals.repaired)
                          : 0.0,
      totals.max_repair_passes, rate);
  if (rate < min_repair_rate) {
    std::printf(
        "sdc soak: certify-and-repair rate %.3f below --min-repair-rate"
        " %.3f\n",
        rate, min_repair_rate);
    return 1;
  }
  if (escape_rate > max_escape_rate) {
    std::printf(
        "sdc soak: escape rate %.3f above --max-escape-rate %.3f\n",
        escape_rate, max_escape_rate);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------- repro

// Replays one chaos or SDC trial from its FAULT-REPRO / SDC-REPRO
// line.  Diagnostic tokens (path, rung, reason) are ignored; replay
// consumes only the trial-derivation fields.
int run_repro(const std::string& line) {
  const ReproLine repro(line);
  const std::string mode = repro.get("mode");
  if (mode != "chaos" && mode != "sdc") {
    std::fprintf(stderr,
                 "--repro replays mode=chaos FAULT-REPRO and mode=sdc"
                 " SDC-REPRO lines only\n");
    return 2;
  }

  const auto factors = standard_factors();
  ChaosTrialSpec spec;
  spec.seed = static_cast<unsigned>(std::stoul(repro.require("seed")));
  spec.trial = std::stol(repro.require("trial"));
  const std::string family = repro.require("family");
  for (const LabeledFactor& factor : factors)
    if (factor.name == family) spec.factor = &factor;
  if (spec.factor == nullptr) {
    std::fprintf(stderr, "--repro: unknown factor family '%s'\n",
                 family.c_str());
    return 2;
  }
  spec.r = std::stoi(repro.require("r"));
  spec.pattern = std::stoi(repro.require("pattern"));
  spec.threads = std::stoi(repro.require("threads"));
  spec.sorter = repro.require("sorter") == kChaosSorterNames[1] ? 1 : 0;
  spec.config = FaultModel::parse_schedule_string(repro.require("schedule"));

  int status;
  if (mode == "chaos") {
    spec.interval = std::stoi(repro.require("interval"));
    status = run_chaos_trial(spec, nullptr);
  } else {
    // Absent on pre-adaptive SDC-REPRO lines; defaults replay the
    // original full-certificate behavior.
    if (repro.has("cert-level"))
      spec.cert_level = parse_cert_level(repro.get("cert-level"));
    if (repro.has("cert-seed"))
      spec.cert_seed = std::stoull(repro.get("cert-seed"));
    status = run_sdc_trial(spec, nullptr);
  }
  std::printf("repro: %s\n", status == 0
                                 ? "trial passed (failure did not reproduce)"
                                 : "failure reproduced");
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  long trials = 200;
  unsigned seed = 12345;
  unsigned fault_seed = 1;
  double fault_rate = -1;
  PNode max_nodes = 20000;
  bool chaos = false;
  bool sdc = false;
  double min_repair_rate = 0;
  CertLevel cert_level = CertLevel::kFull;
  double max_escape_rate = 0;
  std::string repro_line;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
      trials = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<unsigned>(std::atol(argv[++i]));
    else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc)
      max_nodes = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc)
      fault_rate = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc)
      fault_seed = static_cast<unsigned>(std::atol(argv[++i]));
    else if (std::strcmp(argv[i], "--chaos") == 0)
      chaos = true;
    else if (std::strcmp(argv[i], "--sdc") == 0)
      sdc = true;
    else if (std::strcmp(argv[i], "--min-repair-rate") == 0 && i + 1 < argc)
      min_repair_rate = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--cert-level") == 0 && i + 1 < argc) {
      try {
        cert_level = parse_cert_level(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--cert-level: %s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--max-escape-rate") == 0 && i + 1 < argc)
      max_escape_rate = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--repro") == 0) {
      // Everything after --repro is the repro line, quoted or
      // shell-split: rejoin it either way.
      repro_line = ReproLine::rejoin_args(argc, argv, i + 1);
      i = argc;
      if (repro_line.empty()) {
        std::fprintf(stderr,
                     "--repro needs a FAULT-REPRO or SDC-REPRO line\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trials T] [--seed S] [--max-nodes M]"
                   " [--faults RATE] [--fault-seed F] [--chaos] [--sdc]"
                   " [--min-repair-rate R] [--cert-level spot|sampled|full]"
                   " [--max-escape-rate R] [--repro REPRO-line]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!repro_line.empty()) {
    try {
      return run_repro(repro_line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--repro: malformed line: %s\n", e.what());
      return 2;
    }
  }
  if (sdc)
    return run_sdc_soak(trials, seed, max_nodes, min_repair_rate, cert_level,
                        max_escape_rate);
  if (chaos)
    return run_chaos_soak(trials, seed, fault_rate >= 0 ? fault_rate : 0.001,
                          max_nodes);
  if (fault_rate >= 0)
    return run_fault_soak(trials, seed, fault_seed, fault_rate, max_nodes);

  const auto factors = standard_factors();
  const OracleS2 oracle;
  const ShearsortS2 shear;
  const SnakeOETS2 oet;
  const S2Sorter* sorters[] = {&oracle, &shear, &oet};
  std::mt19937_64 rng(seed);

  long executed = 0;
  for (long trial = 0; trial < trials; ++trial) {
    const auto& factor = factors[rng() % factors.size()];
    const int r = 2 + static_cast<int>(rng() % 4);
    if (pow_int(factor.size(), r) > max_nodes) continue;
    const ProductGraph pg(factor, r);
    const int pattern = static_cast<int>(rng() % 5);
    const int threads = 1 + static_cast<int>(rng() % 4);
    const int block = (rng() % 3 == 0) ? 1 + static_cast<int>(rng() % 8) : 1;
    const std::size_t sorter = rng() % 3;
    // Executable sorters are slow on big machines; keep them small.
    if (sorter != 0 && pg.num_nodes() > 2000) continue;
    if (block > 1 && pg.num_nodes() * block > 50000) continue;

    const auto keys = make_input(pg.num_nodes() * block, pattern, rng);
    std::vector<Key> expected = keys;
    std::sort(expected.begin(), expected.end());

    ParallelExecutor exec(threads);
    std::vector<Key> got;
    if (block == 1) {
      Machine m(pg, keys, &exec);
      SortOptions options;
      options.s2 = sorters[sorter];
      (void)sort_product_network(m, options);
      got = m.read_snake(full_view(pg));
    } else {
      static const BlockOracleS2 block_oracle;
      static const BlockShearsortS2 block_shear;
      static const BlockSnakeOETS2 block_oet;
      const BlockS2Sorter* block_sorters[] = {&block_oracle, &block_shear,
                                              &block_oet};
      BlockMachine m(pg, keys, block, &exec);
      BlockSortOptions options;
      options.s2 = block_sorters[pg.num_nodes() <= 700 ? rng() % 3 : 0];
      (void)sort_block_network(m, options);
      got = m.read_snake(full_view(pg));
    }
    ++executed;

    if (got != expected) {
      std::printf("MISMATCH: factor=%s r=%d pattern=%d threads=%d block=%d"
                  " sorter=%zu seed=%u trial=%ld\n",
                  factor.name.c_str(), r, pattern, threads, block, sorter,
                  seed, trial);
      return 1;
    }
  }
  std::printf("stress: %ld/%ld trials executed, all sorted correctly\n",
              executed, trials);
  return 0;
}
