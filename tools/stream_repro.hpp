#pragma once

// STREAM-REPRO — the streaming pipeline's replay line
// (docs/STREAMING.md, "Replay").
//
// One line carries the *entire* configuration of a StreamingSorter run
// (every batch's keys are a pure hash of the seed, so no data rides
// along) plus two replay identities: the order-sensitive per-batch
// certificate chain (`chain=`) and the full report hash (`hash=`).  A
// replay re-runs the stream and must match both bit-identically —
// chain= proves the same keys arrived in the same batch order, hash=
// proves every counter (retries, crashes, rollbacks, high-water, ...)
// evolved identically.
//
// Shared by prodsort_stream and the repro/fuzz tests; parsing rejects
// malformed tokens with std::invalid_argument naming the token, in the
// same spirit as FaultModel::parse_schedule_string.

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>

#include "repro_line.hpp"
#include "stream/streaming_sorter.hpp"

namespace prodsort {

/// Everything a replay needs: the sorter config plus the topology and
/// executor shape, and the two expected replay identities.
struct StreamRepro {
  StreamConfig config;
  int size = 4;  ///< cycle-factor size (topology = cycle(size)^dims)
  int dims = 2;
  int threads = 1;
  std::uint64_t chain = 0;  ///< expected StreamReport::chain_hash
  std::uint64_t hash = 0;   ///< expected StreamReport::hash()
  /// True when the run was journaled (docs/DURABILITY.md): the line
  /// then carries a `journal=` token holding the io-fault schedule
  /// (`none` for no injected faults).  The journal *directory* is
  /// machine-local and never rides on the line — a replay must supply
  /// its own via --journal.
  bool journal = false;
};

namespace stream_repro_detail {

inline std::int64_t parse_int(const ReproLine& line, std::string_view key) {
  const std::string value = line.require(key);
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    throw std::invalid_argument("STREAM-REPRO: bad token '" +
                                std::string(key) + "=" + value + "'");
  return out;
}

inline std::uint64_t parse_u64(const ReproLine& line, std::string_view key) {
  const std::string value = line.require(key);
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    throw std::invalid_argument("STREAM-REPRO: bad token '" +
                                std::string(key) + "=" + value + "'");
  return out;
}

inline double parse_rate(const ReproLine& line, std::string_view key) {
  const std::string value = line.require(key);
  try {
    std::size_t consumed = 0;
    const double out = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("STREAM-REPRO: bad token '" +
                                std::string(key) + "=" + value + "'");
  }
}

}  // namespace stream_repro_detail

/// The one-line replay form, without a trailing newline.
inline std::string format_stream_repro(const StreamRepro& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "STREAM-REPRO seed=%" PRIu64
      " batches=%d batch=%lld pattern=%d interval=%lld ranges=%d"
      " sample=%lld block=%d budget=%lld backends=%d domains=%d faulty=%d"
      " tear=%.17g crash=%.17g retry=%d backoff=%lld cap=%lld"
      " breaker-k=%d cooldown=%lld size=%d dims=%d threads=%d"
      " chain=%" PRIu64 " hash=%" PRIu64,
      r.config.seed, r.config.batches,
      static_cast<long long>(r.config.batch_keys), r.config.pattern,
      static_cast<long long>(r.config.batch_interval), r.config.ranges,
      static_cast<long long>(r.config.sample_keys), r.config.block,
      static_cast<long long>(r.config.budget_bytes), r.config.backends,
      r.config.domains, r.config.faulty, r.config.tear_rate,
      r.config.crash_rate, r.config.retry_limit,
      static_cast<long long>(r.config.backoff_base),
      static_cast<long long>(r.config.backoff_cap),
      r.config.breaker.failure_threshold,
      static_cast<long long>(r.config.breaker.cooldown), r.size, r.dims,
      r.threads, r.chain, r.hash);
  std::string line(buf);
  // The outage schedule can be arbitrarily long; append it outside the
  // fixed buffer.  Omitted entirely when there are no windows, and
  // guaranteed space-free by format_domain_outages.
  if (!r.config.outage.empty()) line += " outage=" + r.config.outage;
  // journal= marks a durable run and round-trips the io-fault schedule
  // (`none` when journaling ran fault-free); absent entirely when the
  // run was not journaled.
  if (r.journal || !r.config.journal_dir.empty())
    line += " journal=" + format_io_faults(r.config.io_faults);
  return line;
}

/// Parses a STREAM-REPRO line (the inverse of format_stream_repro;
/// unknown tokens are ignored, first occurrence wins).  Throws
/// std::invalid_argument naming the missing or malformed token; the
/// outage schedule is validated against the line's own domain count.
inline StreamRepro parse_stream_repro(const std::string& line) {
  using namespace stream_repro_detail;
  const ReproLine repro(line);
  StreamRepro r;
  r.config.seed = parse_u64(repro, "seed");
  r.config.batches = static_cast<int>(parse_int(repro, "batches"));
  r.config.batch_keys = parse_int(repro, "batch");
  r.config.pattern = static_cast<int>(parse_int(repro, "pattern"));
  r.config.batch_interval = parse_int(repro, "interval");
  r.config.ranges = static_cast<int>(parse_int(repro, "ranges"));
  r.config.sample_keys = parse_int(repro, "sample");
  r.config.block = static_cast<int>(parse_int(repro, "block"));
  r.config.budget_bytes = parse_int(repro, "budget");
  r.config.backends = static_cast<int>(parse_int(repro, "backends"));
  r.config.domains = static_cast<int>(parse_int(repro, "domains"));
  r.config.faulty = static_cast<int>(parse_int(repro, "faulty"));
  r.config.tear_rate = parse_rate(repro, "tear");
  r.config.crash_rate = parse_rate(repro, "crash");
  r.config.retry_limit = static_cast<int>(parse_int(repro, "retry"));
  r.config.backoff_base = parse_int(repro, "backoff");
  r.config.backoff_cap = parse_int(repro, "cap");
  r.config.breaker.failure_threshold =
      static_cast<int>(parse_int(repro, "breaker-k"));
  r.config.breaker.cooldown = parse_int(repro, "cooldown");
  r.size = static_cast<int>(parse_int(repro, "size"));
  r.dims = static_cast<int>(parse_int(repro, "dims"));
  r.threads = static_cast<int>(parse_int(repro, "threads"));
  r.chain = parse_u64(repro, "chain");
  r.hash = parse_u64(repro, "hash");
  if (repro.has("outage")) {
    r.config.outage = repro.get("outage");
    // Validate eagerly so a torn line fails at parse time, not
    // mid-replay; parse_domain_outages names the bad token.
    (void)parse_domain_outages(r.config.outage,
                               std::min(r.config.domains, r.config.backends));
  }
  if (repro.has("journal")) {
    r.journal = true;
    // parse_io_faults throws std::invalid_argument naming the malformed
    // subtoken — same eager-failure discipline as the outage schedule.
    r.config.io_faults = parse_io_faults(repro.get("journal"));
  }
  return r;
}

}  // namespace prodsort
