// prodsort_stream — deterministic streaming-ingestion driver
// (docs/STREAMING.md).
//
//   prodsort_stream [--seed S] [--batches B] [--batch-keys K]
//                   [--pattern P] [--interval I] [--ranges R]
//                   [--sample N] [--block B] [--budget BYTES]
//                   [--backends N] [--domains D] [--faulty F]
//                   [--outage D@F~U ...] [--tear RATE] [--crash RATE]
//                   [--retry R] [--size N] [--dims r] [--threads T]
//                   [--json FILE]
//   prodsort_stream --soak [same flags]
//   prodsort_stream --repro STREAM-REPRO ...
//
// Runs a StreamingSorter over --batches seed-hashed batches: sample-
// sort splitter partitioning, bounded-size block-mode runs dispatched
// to a breaker-guarded backend pool, and measured multiway host merge
// on egress — all on the virtual clock, under a byte-accounted memory
// budget with backpressure.  `--faulty F` gives the first F backends a
// silently inverted comparator (exercising the end-to-end certificate
// and block repair); `--outage D@F~U` (repeatable) darkens fault
// domain D over virtual time [F, U); `--crash` and `--tear` inject
// whole-run crashes and torn egress merges at the given per-attempt
// rates.
//
// Every run prints one machine-readable STREAM-REPRO line; --repro
// accepts that line (quoted or shell-split), replays the stream, and
// exits nonzero unless both the certificate chain and the report hash
// match bit-identically.
//
// --soak is the streaming gate CI runs under sanitizers: default fault
// pressure (crashes, tears, one faulty backend, an outage window) plus
// hard invariant checks — conservation (every ingested key sealed
// exactly once, fingerprints equal), zero certificate escapes, memory
// high-water within the budget, and globally sorted emission — exit 1
// with the repro line on any violation.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "graph/labeled_factor.hpp"
#include "network/parallel_executor.hpp"
#include "stream_repro.hpp"

using namespace prodsort;

namespace {

struct StreamRun {
  StreamReport report;
  bool emitted_sorted = false;
  std::int64_t emitted_keys = 0;
};

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

StreamRun run_stream(const StreamRepro& args) {
  const LabeledFactor factor = labeled_cycle(args.size);
  const ProductGraph pg(factor, args.dims);
  ParallelExecutor executor(args.threads);
  StreamingSorter sorter(pg, args.config, &executor);
  StreamRun run;
  run.report = sorter.run();
  const std::vector<Key>& emitted = sorter.emitted();
  run.emitted_keys = static_cast<std::int64_t>(emitted.size());
  run.emitted_sorted = true;
  for (std::size_t i = 1; i < emitted.size(); ++i)
    if (emitted[i - 1] > emitted[i]) run.emitted_sorted = false;
  return run;
}

/// The streaming soak gate: the invariants CI asserts under sanitizers.
int check_invariants(const StreamRepro& args, const StreamRun& run) {
  const StreamReport& report = run.report;
  int violations = 0;
  if (!report.complete) {
    std::printf("VIOLATION: stream did not complete — %lld/%d ranges sealed,"
                " %lld run(s) dead\n",
                static_cast<long long>(report.ranges_sealed),
                args.config.ranges,
                static_cast<long long>(report.runs_failed));
    ++violations;
  }
  if (report.cert_escapes != 0) {
    std::printf("VIOLATION: %lld certificate escape(s) — a fingerprint"
                " mismatch crossed a pipeline stage\n",
                static_cast<long long>(report.cert_escapes));
    ++violations;
  }
  if (!report.conserved()) {
    std::printf("VIOLATION: conservation — ingested=%lld emitted=%lld,"
                " multiset fingerprints %s\n",
                static_cast<long long>(report.keys_ingested),
                static_cast<long long>(report.keys_emitted),
                report.sealed_fp == report.ingest_fp ? "equal" : "DIFFER");
    ++violations;
  }
  if (report.high_water_bytes > report.budget_bytes) {
    std::printf("VIOLATION: memory — high water %lld bytes > budget %lld\n",
                static_cast<long long>(report.high_water_bytes),
                static_cast<long long>(report.budget_bytes));
    ++violations;
  }
  if (!run.emitted_sorted) {
    std::printf("VIOLATION: emission not globally sorted across %lld keys\n",
                static_cast<long long>(run.emitted_keys));
    ++violations;
  }
  return violations;
}

int run_repro(const std::string& line) {
  StreamRepro args = parse_stream_repro(line);
  const std::uint64_t expect_chain = args.chain;
  const std::uint64_t expect_hash = args.hash;
  const StreamRun run = run_stream(args);
  if (run.report.chain_hash == expect_chain &&
      run.report.hash() == expect_hash) {
    std::printf("repro: stream replayed bit-identically (chain=%" PRIu64
                " hash=%" PRIu64 ")\n",
                expect_chain, expect_hash);
    return 0;
  }
  std::printf("repro: MISMATCH — expected chain=%" PRIu64 " hash=%" PRIu64
              " got chain=%" PRIu64 " hash=%" PRIu64 "\n",
              expect_chain, expect_hash, run.report.chain_hash,
              run.report.hash());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  StreamRepro args;
  StreamConfig& cfg = args.config;
  bool soak = false;
  bool outage_set = false;
  std::string json_path;
  std::string repro_line;
  for (int i = 1; i < argc; ++i) {
    const auto has_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (has_value("--seed"))
      cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (has_value("--batches")) cfg.batches = std::atoi(argv[++i]);
    else if (has_value("--batch-keys")) cfg.batch_keys = std::atoll(argv[++i]);
    else if (has_value("--pattern")) cfg.pattern = std::atoi(argv[++i]);
    else if (has_value("--interval"))
      cfg.batch_interval = std::atoll(argv[++i]);
    else if (has_value("--ranges")) cfg.ranges = std::atoi(argv[++i]);
    else if (has_value("--sample")) cfg.sample_keys = std::atoll(argv[++i]);
    else if (has_value("--block")) cfg.block = std::atoi(argv[++i]);
    else if (has_value("--budget")) cfg.budget_bytes = std::atoll(argv[++i]);
    else if (has_value("--backends")) cfg.backends = std::atoi(argv[++i]);
    else if (has_value("--domains")) cfg.domains = std::atoi(argv[++i]);
    else if (has_value("--faulty")) cfg.faulty = std::atoi(argv[++i]);
    else if (has_value("--outage")) {
      if (!cfg.outage.empty()) cfg.outage += '+';
      cfg.outage += argv[++i];
      outage_set = true;
    } else if (has_value("--tear")) cfg.tear_rate = std::atof(argv[++i]);
    else if (has_value("--crash")) cfg.crash_rate = std::atof(argv[++i]);
    else if (has_value("--retry")) cfg.retry_limit = std::atoi(argv[++i]);
    else if (has_value("--size")) args.size = std::atoi(argv[++i]);
    else if (has_value("--dims")) args.dims = std::atoi(argv[++i]);
    else if (has_value("--threads")) args.threads = std::atoi(argv[++i]);
    else if (has_value("--json")) json_path = argv[++i];
    else if (std::strcmp(argv[i], "--soak") == 0) soak = true;
    else if (std::strcmp(argv[i], "--repro") == 0) {
      repro_line = ReproLine::rejoin_args(argc, argv, i + 1);
      i = argc;
      if (repro_line.empty()) {
        std::fprintf(stderr, "--repro needs a STREAM-REPRO line\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed S] [--batches B] [--batch-keys K]"
                   " [--pattern P] [--interval I] [--ranges R] [--sample N]"
                   " [--block B] [--budget BYTES] [--backends N]"
                   " [--domains D] [--faulty F] [--outage D@F~U]"
                   " [--tear RATE] [--crash RATE] [--retry R] [--size N]"
                   " [--dims r] [--threads T] [--json FILE]"
                   " [--soak] [--repro STREAM-REPRO-line]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!repro_line.empty()) {
    try {
      return run_repro(repro_line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--repro: malformed line: %s\n", e.what());
      return 2;
    }
  }

  if (soak) {
    // Default fault pressure: whole-run crashes, torn merges, one
    // comparator-faulted backend, and one mid-stream outage window —
    // every rung of the recovery ladder fires.
    if (cfg.crash_rate == 0) cfg.crash_rate = 0.05;
    if (cfg.tear_rate == 0) cfg.tear_rate = 0.25;
    if (cfg.faulty == 0) cfg.faulty = 1;
    if (!outage_set) {
      const std::int64_t from = cfg.batch_interval * cfg.batches / 4;
      char window[64];
      std::snprintf(window, sizeof window, "0@%lld~%lld",
                    static_cast<long long>(from),
                    static_cast<long long>(2 * from));
      cfg.outage = window;
    }
  }

  try {
    StreamRun run = run_stream(args);
    const StreamReport& report = run.report;
    args.chain = report.chain_hash;
    args.hash = report.hash();
    std::printf("streaming sort: %d batches x %lld keys over cycle(%d)^%d,"
                " block=%d, %d ranges, %d backends (%d faulted, %d domains),"
                " budget %lld bytes\n\n%s\n\n",
                cfg.batches, static_cast<long long>(cfg.batch_keys),
                args.size, args.dims, cfg.block, cfg.ranges, cfg.backends,
                cfg.faulty, std::min(cfg.domains, cfg.backends),
                static_cast<long long>(cfg.budget_bytes),
                report.summary().c_str());
    std::printf("%s\n", format_stream_repro(args).c_str());
    if (!json_path.empty() && !write_file(json_path, report.json()))
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
    if (soak) {
      const int violations = check_invariants(args, run);
      if (violations != 0) {
        std::printf("soak: %d invariant violation(s)\n", violations);
        return 1;
      }
      std::printf("soak: all streaming invariants held — %lld keys,"
                  " high-water %lld/%lld bytes, %lld retries, %lld"
                  " rollbacks\n",
                  static_cast<long long>(report.keys_emitted),
                  static_cast<long long>(report.high_water_bytes),
                  static_cast<long long>(report.budget_bytes),
                  static_cast<long long>(report.retries),
                  static_cast<long long>(report.merge_rollbacks));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prodsort_stream: %s\n", e.what());
    return 2;
  }
}
