// prodsort_stream — deterministic streaming-ingestion driver
// (docs/STREAMING.md, docs/DURABILITY.md).
//
//   prodsort_stream [--seed S] [--batches B] [--batch-keys K]
//                   [--pattern P] [--interval I] [--ranges R]
//                   [--sample N] [--block B] [--budget BYTES]
//                   [--backends N] [--domains D] [--faulty F]
//                   [--outage D@F~U ...] [--tear RATE] [--crash RATE]
//                   [--retry R] [--size N] [--dims r] [--threads T]
//                   [--json FILE] [--journal DIR] [--io-faults TOKEN]
//                   [--kill-after-records N] [--out FILE]
//   prodsort_stream --soak [same flags]
//   prodsort_stream --recover DIR [--kill-after-records N] [--out FILE]
//   prodsort_stream --repro STREAM-REPRO ...
//
// Runs a StreamingSorter over --batches seed-hashed batches: sample-
// sort splitter partitioning, bounded-size block-mode runs dispatched
// to a breaker-guarded backend pool, and measured multiway host merge
// on egress — all on the virtual clock, under a byte-accounted memory
// budget with backpressure.  `--faulty F` gives the first F backends a
// silently inverted comparator (exercising the end-to-end certificate
// and block repair); `--outage D@F~U` (repeatable) darkens fault
// domain D over virtual time [F, U); `--crash` and `--tear` inject
// whole-run crashes and torn egress merges at the given per-attempt
// rates.
//
// Durability: `--journal DIR` turns on the write-ahead journal and
// real spill files under DIR; `--io-faults TOKEN` injects
// deterministic short writes / dropped fsyncs / read corruption
// (TOKEN = `ioseed@S+shortw@R+dropsync@R+corrupt@R`, or `none`);
// `--kill-after-records N` crashes the process (exit 137, printing
// DURABILITY-KILL) after the N-th journal record commits, leaving
// exactly what a power cut would.  `--recover DIR` replays the
// journal, discards a torn tail, re-verifies surviving runs against
// their journaled fingerprints, re-dispatches what needs it, and
// finishes the stream — the emitted output and the STREAM-FP line are
// bit-identical to an uninterrupted run.  `--out FILE` writes the
// emitted keys as raw binary so a recovered run can be byte-compared
// (cmp) against an uninterrupted one.
//
// Every run prints one machine-readable STREAM-REPRO line; --repro
// accepts that line (quoted or shell-split), replays the stream, and
// exits nonzero unless both the certificate chain and the report hash
// match bit-identically.  A journaled line carries a `journal=` token
// and needs --journal DIR at replay time (the directory itself is
// machine-local and never rides on the line).
//
// --soak is the streaming gate CI runs under sanitizers: default fault
// pressure (crashes, tears, one faulty backend, an outage window) plus
// hard invariant checks — conservation (every ingested key sealed
// exactly once, fingerprints equal), zero certificate escapes, memory
// high-water within the budget, globally sorted emission, and (when
// journaling) a spill ledger that reconciles against measured disk —
// exit 1 with the repro line on any violation.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "durability/journal.hpp"
#include "graph/labeled_factor.hpp"
#include "network/parallel_executor.hpp"
#include "stream/recovery.hpp"
#include "stream_repro.hpp"

using namespace prodsort;

namespace {

struct StreamRun {
  StreamReport report;
  std::vector<Key> emitted;
  bool emitted_sorted = false;
  std::int64_t emitted_keys = 0;
};

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

/// Raw little-endian i64 image of the emitted keys — the byte format a
/// recovered run is `cmp`'d against in the durability-soak gate.
std::string pack_emitted(const std::vector<Key>& keys) {
  std::string out;
  out.reserve(keys.size() * sizeof(Key));
  for (const Key key : keys) {
    const auto u = static_cast<std::uint64_t>(key);
    for (int b = 0; b < 8; ++b)
      out.push_back(static_cast<char>((u >> (8 * b)) & 0xff));
  }
  return out;
}

/// The stream's data identity, independent of *how* the keys got out:
/// a recovered run legitimately differs from an uninterrupted one in
/// work counters (so report.hash() differs) but must match this line
/// bit-for-bit.
void print_stream_fp(const StreamReport& report) {
  std::printf("STREAM-FP keys=%lld chain=%" PRIu64 " ingest=%" PRIu64
              " sealed=%" PRIu64 "\n",
              static_cast<long long>(report.keys_emitted), report.chain_hash,
              report.ingest_fp.checksum, report.sealed_fp.checksum);
}

void finish_run(StreamRun& run) {
  run.emitted_keys = static_cast<std::int64_t>(run.emitted.size());
  run.emitted_sorted = true;
  for (std::size_t i = 1; i < run.emitted.size(); ++i)
    if (run.emitted[i - 1] > run.emitted[i]) run.emitted_sorted = false;
}

StreamRun run_stream(const StreamRepro& args) {
  const LabeledFactor factor = labeled_cycle(args.size);
  const ProductGraph pg(factor, args.dims);
  ParallelExecutor executor(args.threads);
  StreamingSorter sorter(pg, args.config, &executor);
  StreamRun run;
  run.report = sorter.run();
  run.emitted = sorter.emitted();
  finish_run(run);
  return run;
}

/// The streaming soak gate: the invariants CI asserts under sanitizers.
int check_invariants(const StreamRepro& args, const StreamRun& run) {
  const StreamReport& report = run.report;
  int violations = 0;
  if (!report.complete) {
    std::printf("VIOLATION: stream did not complete — %lld/%d ranges sealed,"
                " %lld run(s) dead\n",
                static_cast<long long>(report.ranges_sealed),
                args.config.ranges,
                static_cast<long long>(report.runs_failed));
    ++violations;
  }
  if (report.cert_escapes != 0) {
    std::printf("VIOLATION: %lld certificate escape(s) — a fingerprint"
                " mismatch crossed a pipeline stage\n",
                static_cast<long long>(report.cert_escapes));
    ++violations;
  }
  if (!report.conserved()) {
    std::printf("VIOLATION: conservation — ingested=%lld emitted=%lld,"
                " multiset fingerprints %s\n",
                static_cast<long long>(report.keys_ingested),
                static_cast<long long>(report.keys_emitted),
                report.sealed_fp == report.ingest_fp ? "equal" : "DIFFER");
    ++violations;
  }
  if (report.high_water_bytes > report.budget_bytes) {
    std::printf("VIOLATION: memory — high water %lld bytes > budget %lld\n",
                static_cast<long long>(report.high_water_bytes),
                static_cast<long long>(report.budget_bytes));
    ++violations;
  }
  if (!run.emitted_sorted) {
    std::printf("VIOLATION: emission not globally sorted across %lld keys\n",
                static_cast<long long>(run.emitted_keys));
    ++violations;
  }
  if (report.spill_reconcile_failures != 0) {
    std::printf("VIOLATION: spill ledger — %lld reconciliation failure(s),"
                " the byte model disagrees with measured disk\n",
                static_cast<long long>(report.spill_reconcile_failures));
    ++violations;
  }
  return violations;
}

int run_repro(const std::string& line, const std::string& journal_dir) {
  StreamRepro args = parse_stream_repro(line);
  if (args.journal && journal_dir.empty()) {
    std::fprintf(stderr,
                 "--repro: this line carries a journal= token (a durable"
                 " run); supply a scratch directory with --journal DIR"
                 " (before --repro, which consumes the rest of the"
                 " command line) to replay it\n");
    return 2;
  }
  if (args.journal) args.config.journal_dir = journal_dir;
  const std::uint64_t expect_chain = args.chain;
  const std::uint64_t expect_hash = args.hash;
  const StreamRun run = run_stream(args);
  if (run.report.chain_hash == expect_chain &&
      run.report.hash() == expect_hash) {
    std::printf("repro: stream replayed bit-identically (chain=%" PRIu64
                " hash=%" PRIu64 ")\n",
                expect_chain, expect_hash);
    return 0;
  }
  std::printf("repro: MISMATCH — expected chain=%" PRIu64 " hash=%" PRIu64
              " got chain=%" PRIu64 " hash=%" PRIu64 "\n",
              expect_chain, expect_hash, run.report.chain_hash,
              run.report.hash());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  StreamRepro args;
  StreamConfig& cfg = args.config;
  bool soak = false;
  bool outage_set = false;
  std::string json_path;
  std::string repro_line;
  std::string recover_dir;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const auto has_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (has_value("--seed"))
      cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (has_value("--batches")) cfg.batches = std::atoi(argv[++i]);
    else if (has_value("--batch-keys")) cfg.batch_keys = std::atoll(argv[++i]);
    else if (has_value("--pattern")) cfg.pattern = std::atoi(argv[++i]);
    else if (has_value("--interval"))
      cfg.batch_interval = std::atoll(argv[++i]);
    else if (has_value("--ranges")) cfg.ranges = std::atoi(argv[++i]);
    else if (has_value("--sample")) cfg.sample_keys = std::atoll(argv[++i]);
    else if (has_value("--block")) cfg.block = std::atoi(argv[++i]);
    else if (has_value("--budget")) cfg.budget_bytes = std::atoll(argv[++i]);
    else if (has_value("--backends")) cfg.backends = std::atoi(argv[++i]);
    else if (has_value("--domains")) cfg.domains = std::atoi(argv[++i]);
    else if (has_value("--faulty")) cfg.faulty = std::atoi(argv[++i]);
    else if (has_value("--outage")) {
      if (!cfg.outage.empty()) cfg.outage += '+';
      cfg.outage += argv[++i];
      outage_set = true;
    } else if (has_value("--tear")) cfg.tear_rate = std::atof(argv[++i]);
    else if (has_value("--crash")) cfg.crash_rate = std::atof(argv[++i]);
    else if (has_value("--retry")) cfg.retry_limit = std::atoi(argv[++i]);
    else if (has_value("--size")) args.size = std::atoi(argv[++i]);
    else if (has_value("--dims")) args.dims = std::atoi(argv[++i]);
    else if (has_value("--threads")) args.threads = std::atoi(argv[++i]);
    else if (has_value("--json")) json_path = argv[++i];
    else if (has_value("--journal")) {
      cfg.journal_dir = argv[++i];
      args.journal = true;
    } else if (has_value("--io-faults")) {
      try {
        cfg.io_faults = parse_io_faults(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--io-faults: %s\n", e.what());
        return 2;
      }
    } else if (has_value("--kill-after-records"))
      cfg.kill_after_records = std::atoll(argv[++i]);
    else if (has_value("--recover")) recover_dir = argv[++i];
    else if (has_value("--out")) out_path = argv[++i];
    else if (std::strcmp(argv[i], "--soak") == 0) soak = true;
    else if (std::strcmp(argv[i], "--repro") == 0) {
      repro_line = ReproLine::rejoin_args(argc, argv, i + 1);
      i = argc;
      if (repro_line.empty()) {
        std::fprintf(stderr, "--repro needs a STREAM-REPRO line\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed S] [--batches B] [--batch-keys K]"
                   " [--pattern P] [--interval I] [--ranges R] [--sample N]"
                   " [--block B] [--budget BYTES] [--backends N]"
                   " [--domains D] [--faulty F] [--outage D@F~U]"
                   " [--tear RATE] [--crash RATE] [--retry R] [--size N]"
                   " [--dims r] [--threads T] [--json FILE]"
                   " [--journal DIR] [--io-faults TOKEN]"
                   " [--kill-after-records N] [--out FILE]"
                   " [--recover DIR]"
                   " [--soak] [--repro STREAM-REPRO-line]\n",
                   argv[0]);
      return 2;
    }
  }

  if (cfg.io_faults.any() && cfg.journal_dir.empty() && recover_dir.empty()) {
    std::fprintf(stderr,
                 "--io-faults injects into the durability layer; it needs"
                 " --journal DIR (or --recover DIR)\n");
    return 2;
  }
  if (cfg.kill_after_records != 0 && cfg.journal_dir.empty() &&
      recover_dir.empty()) {
    std::fprintf(stderr,
                 "--kill-after-records counts journal records; it needs"
                 " --journal DIR (or --recover DIR)\n");
    return 2;
  }

  if (!repro_line.empty()) {
    try {
      return run_repro(repro_line, cfg.journal_dir);
    } catch (const DurabilityKill& kill) {
      std::printf("DURABILITY-KILL after %lld journal record(s) — journal"
                  " truncated to its synced prefix\n",
                  static_cast<long long>(kill.records));
      return 137;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--repro: malformed line: %s\n", e.what());
      return 2;
    }
  }

  if (!recover_dir.empty()) {
    try {
      ParallelExecutor executor(args.threads);
      const StreamRecoveryResult result =
          recover_stream(recover_dir, &executor, cfg.kill_after_records);
      StreamRun run;
      run.report = result.report;
      run.emitted = result.emitted;
      finish_run(run);
      std::printf("recovered stream from %s: %lld journal record(s)"
                  " replayed, %lld torn-tail byte(s) discarded, %lld run(s)"
                  " and %lld range(s) restored from disk, %lld batch(es)"
                  " re-ingested\n\n%s\n\n",
                  recover_dir.c_str(),
                  static_cast<long long>(run.report.replayed_records),
                  static_cast<long long>(run.report.torn_tail_bytes),
                  static_cast<long long>(run.report.recovered_runs),
                  static_cast<long long>(run.report.recovered_ranges),
                  static_cast<long long>(run.report.reingested_batches),
                  run.report.summary().c_str());
      print_stream_fp(run.report);
      if (!run.emitted_sorted) {
        std::printf("VIOLATION: recovered emission not globally sorted"
                    " across %lld keys\n",
                    static_cast<long long>(run.emitted_keys));
        return 1;
      }
      if (run.report.spill_reconcile_failures != 0) {
        std::printf("VIOLATION: spill ledger — %lld reconciliation"
                    " failure(s) after recovery\n",
                    static_cast<long long>(
                        run.report.spill_reconcile_failures));
        return 1;
      }
      if (!out_path.empty() &&
          !write_file(out_path, pack_emitted(run.emitted))) {
        std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
        return 1;
      }
      if (!json_path.empty() && !write_file(json_path, run.report.json()))
        std::fprintf(stderr, "warning: could not write %s\n",
                     json_path.c_str());
      return 0;
    } catch (const DurabilityKill& kill) {
      std::printf("DURABILITY-KILL after %lld journal record(s) — journal"
                  " truncated to its synced prefix\n",
                  static_cast<long long>(kill.records));
      return 137;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "prodsort_stream --recover: %s\n", e.what());
      return 2;
    }
  }

  if (soak) {
    // Default fault pressure: whole-run crashes, torn merges, one
    // comparator-faulted backend, and one mid-stream outage window —
    // every rung of the recovery ladder fires.
    if (cfg.crash_rate == 0) cfg.crash_rate = 0.05;
    if (cfg.tear_rate == 0) cfg.tear_rate = 0.25;
    if (cfg.faulty == 0) cfg.faulty = 1;
    if (!outage_set) {
      const std::int64_t from = cfg.batch_interval * cfg.batches / 4;
      char window[64];
      std::snprintf(window, sizeof window, "0@%lld~%lld",
                    static_cast<long long>(from),
                    static_cast<long long>(2 * from));
      cfg.outage = window;
    }
  }

  try {
    StreamRun run = run_stream(args);
    const StreamReport& report = run.report;
    args.chain = report.chain_hash;
    args.hash = report.hash();
    std::printf("streaming sort: %d batches x %lld keys over cycle(%d)^%d,"
                " block=%d, %d ranges, %d backends (%d faulted, %d domains),"
                " budget %lld bytes\n\n%s\n\n",
                cfg.batches, static_cast<long long>(cfg.batch_keys),
                args.size, args.dims, cfg.block, cfg.ranges, cfg.backends,
                cfg.faulty, std::min(cfg.domains, cfg.backends),
                static_cast<long long>(cfg.budget_bytes),
                report.summary().c_str());
    std::printf("%s\n", format_stream_repro(args).c_str());
    print_stream_fp(report);
    if (!out_path.empty() && !write_file(out_path, pack_emitted(run.emitted))) {
      std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
      return 1;
    }
    if (!json_path.empty() && !write_file(json_path, report.json()))
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
    if (soak) {
      const int violations = check_invariants(args, run);
      if (violations != 0) {
        std::printf("soak: %d invariant violation(s)\n", violations);
        return 1;
      }
      std::printf("soak: all streaming invariants held — %lld keys,"
                  " high-water %lld/%lld bytes, %lld retries, %lld"
                  " rollbacks\n",
                  static_cast<long long>(report.keys_emitted),
                  static_cast<long long>(report.high_water_bytes),
                  static_cast<long long>(report.budget_bytes),
                  static_cast<long long>(report.retries),
                  static_cast<long long>(report.merge_rollbacks));
    }
    return 0;
  } catch (const DurabilityKill& kill) {
    std::printf("DURABILITY-KILL after %lld journal record(s) — journal"
                " truncated to its synced prefix\n",
                static_cast<long long>(kill.records));
    return 137;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prodsort_stream: %s\n", e.what());
    return 2;
  }
}
