// prodsort_cli — run the generalized sorting algorithm on any product
// network from the command line.
//
//   prodsort_cli --factor path --size 8 --dims 3 --sorter shearsort
//                [--threads 4] [--seed 1] [--csv] [--validate]
//
// Factors: path cycle complete k2 tree star petersen debruijn shufflex
//          kbip wheel qcube   (size is N for path/cycle/..., levels for
//          tree, d for debruijn/shufflex/qcube, m for kbip)
// Sorters: oracle shearsort snake-oet
//
// Prints one report line (or CSV row) with the Theorem 1 prediction and
// the measured cost; exits nonzero if the result is unsorted or a phase
// count deviates from the closed form.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>

#include "core/block_sort.hpp"
#include "core/product_sort.hpp"
#include "core/s2/oracle_s2.hpp"
#include "core/s2/shearsort_s2.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "product/snake_order.hpp"

using namespace prodsort;

namespace {

struct Options {
  std::string factor = "path";
  int size = 4;
  int dims = 3;
  std::string sorter = "oracle";
  int threads = 1;
  unsigned seed = 1;
  int block = 1;  ///< keys per processor (> 1 switches to block mode)
  bool csv = false;
  bool validate = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--factor F] [--size N] [--dims R] [--sorter S]\n"
               "          [--threads T] [--seed K] [--block B] [--csv]\n"
               "          [--validate]\n"
               "factors: path cycle complete k2 tree star petersen debruijn\n"
               "         shufflex kbip wheel qcube ccc\n"
               "sorters: oracle shearsort snake-oet (unit-key mode only)\n"
               "--block B > 1 runs block mode (B keys per processor)\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--factor") opt.factor = next();
    else if (arg == "--size") opt.size = std::atoi(next());
    else if (arg == "--dims") opt.dims = std::atoi(next());
    else if (arg == "--sorter") opt.sorter = next();
    else if (arg == "--threads") opt.threads = std::atoi(next());
    else if (arg == "--seed") opt.seed = static_cast<unsigned>(std::atol(next()));
    else if (arg == "--block") opt.block = std::atoi(next());
    else if (arg == "--csv") opt.csv = true;
    else if (arg == "--validate") opt.validate = true;
    else usage(argv[0]);
  }
  return opt;
}

LabeledFactor pick_factor(const Options& opt) {
  const std::string& f = opt.factor;
  const NodeId n = static_cast<NodeId>(opt.size);
  if (f == "path") return labeled_path(n);
  if (f == "cycle") return labeled_cycle(n);
  if (f == "complete") return labeled_complete(n);
  if (f == "k2") return labeled_k2();
  if (f == "tree") return labeled_binary_tree(opt.size);
  if (f == "star") return labeled_star(n);
  if (f == "petersen") return labeled_petersen();
  if (f == "debruijn") return labeled_de_bruijn(opt.size);
  if (f == "shufflex") return labeled_shuffle_exchange(opt.size);
  if (f == "kbip") return labeled_complete_bipartite(n);
  if (f == "wheel") return labeled_wheel(n);
  if (f == "qcube") return labeled_hypercube(opt.size);
  if (f == "ccc") return labeled_ccc(opt.size);
  std::fprintf(stderr, "unknown factor '%s'\n", f.c_str());
  std::exit(2);
}

}  // namespace

namespace {

int run(const Options& opt, const char* argv0);

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    return run(opt, argv[0]);
  } catch (const std::exception& e) {
    // Library validation errors (bad sizes, r < 2, ...) surface here.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

namespace {

int run(const Options& opt, const char* argv0) {
  const LabeledFactor factor = pick_factor(opt);
  const ProductGraph pg(factor, opt.dims);

  if (opt.block < 1) usage(argv0);
  std::vector<Key> keys(static_cast<std::size_t>(pg.num_nodes()) *
                        static_cast<std::size_t>(opt.block));
  std::mt19937_64 rng(opt.seed);
  for (Key& k : keys) k = static_cast<Key>(rng() % 1000003);

  ParallelExecutor exec(opt.threads);

  if (opt.block > 1) {  // block mode: B keys per processor, merge-split
    BlockMachine machine(pg, std::move(keys), opt.block,
                         opt.threads > 1 ? &exec : nullptr);
    BlockSortOptions options;
    options.validate_levels = opt.validate;
    const BlockSortReport report = sort_block_network(machine, options);
    const bool sorted = machine.snake_sorted(full_view(pg));
    const bool exact =
        report.cost.s2_phases == report.predicted.s2_phases &&
        report.cost.routing_phases == report.predicted.routing_phases;
    std::printf("%s^%d, block mode: %lld keys (%d per processor)\n",
                factor.name.c_str(), pg.dims(),
                static_cast<long long>(pg.num_nodes() * opt.block), opt.block);
    std::printf("  sorted            : %s\n", sorted ? "yes" : "NO");
    std::printf("  S2 phases         : %lld (predicted %lld)\n",
                static_cast<long long>(report.cost.s2_phases),
                static_cast<long long>(report.predicted.s2_phases));
    std::printf("  routing phases    : %lld (predicted %lld)\n",
                static_cast<long long>(report.cost.routing_phases),
                static_cast<long long>(report.predicted.routing_phases));
    std::printf("  time (block units): %.1f\n", report.cost.formula_time);
    return sorted && exact ? 0 : 1;
  }

  Machine machine(pg, std::move(keys),
                  opt.threads > 1 ? &exec : nullptr);

  const OracleS2 oracle;
  const ShearsortS2 shearsort;
  const SnakeOETS2 snake_oet;
  SortOptions sort_options;
  if (opt.sorter == "oracle") sort_options.s2 = &oracle;
  else if (opt.sorter == "shearsort") sort_options.s2 = &shearsort;
  else if (opt.sorter == "snake-oet") sort_options.s2 = &snake_oet;
  else usage(argv0);
  sort_options.validate_levels = opt.validate;

  const SortReport report = sort_product_network(machine, sort_options);
  const bool sorted = machine.snake_sorted(full_view(pg));
  const bool exact =
      report.cost.s2_phases == report.predicted.s2_phases &&
      report.cost.routing_phases == report.predicted.routing_phases;

  if (opt.csv) {
    std::printf("factor,N,r,keys,sorter,s2_phases,routing_phases,"
                "formula_time,predicted_time,exec_steps,comparisons,sorted\n");
    std::printf("%s,%d,%d,%lld,%s,%lld,%lld,%.1f,%.1f,%lld,%lld,%d\n",
                factor.name.c_str(), factor.size(), pg.dims(),
                static_cast<long long>(pg.num_nodes()), opt.sorter.c_str(),
                static_cast<long long>(report.cost.s2_phases),
                static_cast<long long>(report.cost.routing_phases),
                report.cost.formula_time, report.predicted.formula_time,
                static_cast<long long>(report.cost.exec_steps),
                static_cast<long long>(report.cost.comparisons),
                sorted ? 1 : 0);
  } else {
    std::printf("%s^%d (%lld keys), sorter=%s, threads=%d\n",
                factor.name.c_str(), pg.dims(),
                static_cast<long long>(pg.num_nodes()), opt.sorter.c_str(),
                opt.threads);
    std::printf("  sorted            : %s\n", sorted ? "yes" : "NO");
    std::printf("  S2 phases         : %lld (predicted %lld)\n",
                static_cast<long long>(report.cost.s2_phases),
                static_cast<long long>(report.predicted.s2_phases));
    std::printf("  routing phases    : %lld (predicted %lld)\n",
                static_cast<long long>(report.cost.routing_phases),
                static_cast<long long>(report.predicted.routing_phases));
    std::printf("  time (paper units): %.1f (Theorem 1: %.1f)\n",
                report.cost.formula_time, report.predicted.formula_time);
    std::printf("  executed steps    : %lld\n",
                static_cast<long long>(report.cost.exec_steps));
    std::printf("  comparisons       : %lld\n",
                static_cast<long long>(report.cost.comparisons));
  }
  return sorted && exact ? 0 : 1;
}

}  // namespace
