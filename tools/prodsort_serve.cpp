// prodsort_serve — deterministic sort-service driver (docs/SERVICE.md).
//
//   prodsort_serve [--jobs J] [--seed S] [--load L]
//                  [--policy drop-tail|edf|priority] [--backends B]
//                  [--faulty F] [--tmr K] [--queue-cap C] [--retry R]
//                  [--size N] [--dims r] [--threads T]
//                  [--sdc-budget P] [--ledger FILE] [--json FILE]
//   prodsort_serve --pools P [--tenants T] [--outage P@F~U ...]
//                  [--no-failover] [--no-hedge] [same flags]
//   prodsort_serve --soak [same flags]
//   prodsort_serve --repro SERVICE-REPRO ...
//
// `--sdc-budget P` switches on the adaptive certification dial
// (docs/SERVICE.md): each backend's certificates are priced by its
// measured risk in the suspect ledger, suspects are hardened with the
// quarantine-before-TMR ladder instead of the pool-wide --tmr hammer,
// and the repro line gains `sdc-budget=`/`ledger=` tokens so a replay
// checks the final ledger state too.  `--ledger FILE` preloads the
// ledger from a previous run and persists the updated state back; a
// missing, truncated, or corrupt ledger file is a *loud* error (exit
// 2, error naming the path) — a ledger the operator pointed at must
// never load as silently empty.  Bootstrap a fresh one by writing
// {"version":1,"backends":[]} to the file first.  `--json FILE` writes
// the report JSON (the per-backend SDC attribution feed).
//
// `--pools P` switches to the federated PoolRouter (docs/SERVICE.md,
// "Federation & fault domains"): P pools of --backends members each,
// consistent-hash placement, cross-pool failover and hedged
// re-dispatch (disable with --no-failover / --no-hedge), and
// `--tenants T` equal-weight tenants with per-tenant queues and
// in-flight quotas.  `--outage P@F~U` (repeatable) schedules a
// pool-wide outage for fault domain P covering virtual time
// [F*mean, U*mean) — dispatch into the domain is refused and in-flight
// attempts completing inside the window are lost.
//
// Drives a SortService over a pool of simulated product-network
// backends with open-loop, seed-hashed arrivals at `--load` times the
// pool's fault-free capacity.  `--faulty F` gives the first F backends
// derived fault schedules: odd ones recoverable (message loss plus a
// restartable crash), even ones fail-stop (a permanent crash with no
// remap budget) that heals mid-run — exercising retries, breaker
// trips, half-open probes, and the samplesort fallback.  Recoverable
// backends additionally carry one transient silently-inverted
// comparator, so their attempts exercise the end-to-end certificate
// and the in-place repair rung (the report's sdc counters).  `--tmr K`
// puts the first K backends under triple-modular-redundant voting,
// which masks those comparator faults at 3x comparison cost.
//
// Every run prints one machine-readable SERVICE-REPRO line carrying
// the full configuration and the report hash; --repro accepts that
// line verbatim (quoted or shell-split), re-runs the schedule, and
// exits nonzero unless the hash matches bit-identically.
//
// --soak is the overload gate CI runs under sanitizers: it asserts the
// service invariants — conservation (every offered job reaches exactly
// one terminal outcome), the queue bound, and verification of every
// completed job — and exits 1 with the repro line on any violation.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/hashing.hpp"
#include "core/s2/snake_oet_s2.hpp"
#include "durability/atomic_file.hpp"
#include "repro_line.hpp"
#include "service/router/pool_router.hpp"
#include "service/sort_service.hpp"

using namespace prodsort;

namespace {

struct ServeArgs {
  std::uint64_t seed = 7;
  std::int64_t jobs = 40;
  double load = 1.0;
  std::string policy = "edf";
  int backends = 3;
  int faulty = 0;
  int tmr = 0;  ///< first K backends vote triple-modular-redundantly
  std::size_t queue_cap = 8;
  int retry = 2;
  int size = 4;  ///< cycle-factor size
  int dims = 2;
  int threads = 1;
  bool soak = false;
  double sdc_budget = 0;    ///< >0 switches the adaptive cert dial on
  std::string ledger_path;  ///< preload + persist the suspect ledger
  std::string json_path;    ///< write the report JSON here
  int pools = 0;            ///< >0 switches to the federated PoolRouter
  int tenants = 1;          ///< equal-weight tenants (router path)
  std::vector<std::string> outages;  ///< raw P@F~U tokens
  bool failover = true;
  bool hedge = true;
};

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

/// Ledger persistence is atomic (write temp, fsync, rename): a crash
/// mid-persist leaves at worst a stray FILE.tmp that the loud-failure
/// loader never looks at — the previous ledger survives intact.
bool persist_ledger(const std::string& path, const std::string& json) {
  try {
    write_file_atomic(path, json);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: could not persist ledger: %s\n", e.what());
    return false;
  }
}

/// Derived per-backend fault schedules: odd faulty backends are
/// recoverable, even ones fail outright until the fault heals at
/// `heal` (virtual time).  Pure function of the seed, so a repro line
/// regenerates the exact pool.
std::vector<BackendConfig> build_backends(const ServeArgs& args,
                                          std::int64_t mean, PNode nodes) {
  std::vector<BackendConfig> configs(static_cast<std::size_t>(args.backends));
  const std::int64_t makespan = static_cast<std::int64_t>(
      static_cast<double>(args.jobs) * static_cast<double>(mean) /
      (args.load * static_cast<double>(args.backends)));
  const std::int64_t heal = std::max<std::int64_t>(mean, makespan * 2 / 5);
  for (int i = 0; i < args.faulty && i < args.backends; ++i) {
    BackendConfig& b = configs[static_cast<std::size_t>(i)];
    const std::uint64_t h = mix64(args.seed, static_cast<std::uint64_t>(i));
    const auto node = static_cast<long long>(
        h % static_cast<std::uint64_t>(nodes));
    const auto phase = static_cast<long long>(3 + mix64(h) % 8);
    char schedule[128];
    if (i % 2 == 0) {
      // Fail-stop: permanent crash, no remap budget — every attempt
      // fails until the fault window closes.
      std::snprintf(schedule, sizeof schedule, "seed=%" PRIu64
                    ",crashes=%lld@%lldP",
                    h, node, phase);
      b.recovery.max_remaps = 0;
      b.fault_until = heal;
    } else {
      // Recoverable: light message loss, a restartable crash the
      // escalation ladder absorbs, and a transient silently-inverted
      // comparator (phases [2,6), closed well before the repair rung
      // runs) that only the end-to-end certificate can catch; stays
      // faulted for the whole run.
      const auto sdc_node = static_cast<long long>(
          mix64(h, 2) % static_cast<std::uint64_t>(nodes));
      std::snprintf(schedule, sizeof schedule,
                    "seed=%" PRIu64
                    ",ce=0.002,crashes=%lld@%lld,comparators=%lld@2~6I",
                    h, node, phase, sdc_node);
    }
    b.fault_schedule = schedule;
  }
  for (int i = 0; i < args.tmr && i < args.backends; ++i)
    configs[static_cast<std::size_t>(i)].tmr = true;
  return configs;
}

/// A run plus the final suspect-ledger state (hash for the repro line,
/// JSON for --ledger persistence; both empty when adaptive mode is off).
struct ServeRun {
  ServiceReport report;
  std::uint64_t ledger_hash = 0;
  std::string ledger_json;
};

ServeRun run_service(const ServeArgs& args, std::int64_t* mean_out) {
  const LabeledFactor factor = labeled_cycle(args.size);
  const ProductGraph pg(factor, args.dims);
  const SnakeOETS2 oet;

  ServiceConfig config;
  config.seed = args.seed;
  config.jobs = args.jobs;
  config.load = args.load;
  config.retry_budget = args.retry;
  config.queue = {parse_shed_policy(args.policy), args.queue_cap};
  if (args.sdc_budget > 0) {
    config.adaptive.enabled = true;
    config.adaptive.sdc_budget = args.sdc_budget;
  }
  // Loud by design, and unconditional: a --ledger pointing at a
  // missing or corrupt file throws (exit 2 in main) instead of loading
  // as silently empty and re-trusting every known-suspect backend —
  // even when adaptive mode is off and the history would merely ride
  // along unused.
  if (!args.ledger_path.empty())
    config.adaptive.ledger_json =
        load_ledger_file(args.ledger_path).to_json();

  // Fault-free probe for the mean service time (scales the fault-heal
  // instant and the breaker cooldown).
  ServiceConfig probe = config;
  probe.jobs = 0;
  const std::int64_t mean =
      SortService(pg, probe, std::vector<BackendConfig>(1), &oet)
          .mean_service_steps();
  if (mean_out != nullptr) *mean_out = mean;
  config.breaker = {.failure_threshold = 2, .cooldown = 2 * mean};

  ParallelExecutor executor(args.threads);
  SortService service(pg, config,
                      build_backends(args, mean, pg.num_nodes()), &oet,
                      &executor);
  ServeRun run;
  run.report = service.run();
  if (config.adaptive.enabled) {
    run.ledger_hash = service.ledger().state_hash();
    run.ledger_json = service.ledger().to_json();
  }
  return run;
}

/// One "P@F~U" outage token: pool P dark over [F*mean, U*mean).
struct OutageToken {
  int pool = 0;
  std::int64_t from = 0;   ///< in mean-service-step multiples
  std::int64_t until = 0;  ///< exclusive, same unit
};

OutageToken parse_outage_token(const std::string& token, int pools) {
  int pool = 0;
  long long from = 0;
  long long until = 0;
  char trail = 0;
  if (std::sscanf(token.c_str(), "%d@%lld~%lld%c", &pool, &from, &until,
                  &trail) != 3 ||
      pool < 0 || pool >= pools || from < 0 || until <= from)
    throw std::invalid_argument("--outage: bad token '" + token +
                                "' (want P@F~U with 0 <= P < pools, U > F)");
  return OutageToken{pool, from, until};
}

/// The federated pool specs: every pool gets the derived member
/// schedules of build_backends under a pool-mixed seed, plus a domain
/// schedule carrying its --outage windows (scaled by the probed mean).
std::vector<PoolSpec> build_pools(const ServeArgs& args, std::int64_t mean,
                                  PNode nodes) {
  std::vector<PoolSpec> pools(static_cast<std::size_t>(args.pools));
  for (int p = 0; p < args.pools; ++p) {
    ServeArgs member_args = args;
    member_args.seed = mix64(args.seed, 0xF00D + static_cast<std::uint64_t>(p));
    pools[static_cast<std::size_t>(p)].backends =
        build_backends(member_args, mean, nodes);
  }
  for (const std::string& token : args.outages) {
    const OutageToken o = parse_outage_token(token, args.pools);
    std::string& schedule =
        pools[static_cast<std::size_t>(o.pool)].domain_schedule;
    char window[64];
    std::snprintf(window, sizeof window, "%lld~%lld",
                  static_cast<long long>(o.from * mean),
                  static_cast<long long>(o.until * mean));
    if (schedule.empty()) {
      char head[64];
      std::snprintf(head, sizeof head, "seed=%" PRIu64 ",outages=",
                    mix64(args.seed, static_cast<std::uint64_t>(o.pool)));
      schedule = std::string(head) + window;
    } else {
      schedule += std::string("+") + window;
    }
  }
  return pools;
}

struct RouterRun {
  RouterReport report;
  std::uint64_t ledger_hash = 0;
  std::string ledger_json;
};

RouterRun run_router(const ServeArgs& args, std::int64_t* mean_out) {
  const LabeledFactor factor = labeled_cycle(args.size);
  const ProductGraph pg(factor, args.dims);
  const SnakeOETS2 oet;

  RouterConfig config;
  config.seed = args.seed;
  config.jobs = args.jobs;
  config.load = args.load;
  config.retry_budget = args.retry;
  config.policy = parse_shed_policy(args.policy);
  config.failover = args.failover;
  config.hedging = args.hedge;
  if (args.sdc_budget > 0) {
    config.adaptive.enabled = true;
    config.adaptive.sdc_budget = args.sdc_budget;
  }
  // Same loud-failure rule as the single-service path: a named --ledger
  // must parse, whether or not adaptive certification consumes it.
  if (!args.ledger_path.empty())
    config.adaptive.ledger_json =
        load_ledger_file(args.ledger_path).to_json();

  // Fault-free probe (single healthy pool) for the mean service time.
  RouterConfig probe = config;
  probe.jobs = 0;
  const std::int64_t mean =
      PoolRouter(pg, probe, {PoolSpec{std::vector<BackendConfig>(1), {}}},
                 &oet)
          .mean_service_steps();
  if (mean_out != nullptr) *mean_out = mean;
  config.breaker = {.failure_threshold = 2, .cooldown = 2 * mean};

  const int total_backends = args.pools * args.backends;
  for (int t = 0; t < args.tenants; ++t) {
    TenantSpec tenant;
    tenant.name = "tenant" + std::to_string(t);
    tenant.weight = 1.0;
    tenant.max_in_flight =
        std::max(1, total_backends / std::max(1, args.tenants));
    tenant.queue_cap = args.queue_cap;
    config.tenants.push_back(std::move(tenant));
  }

  ParallelExecutor executor(args.threads);
  PoolRouter router(pg, config, build_pools(args, mean, pg.num_nodes()),
                    &oet, &executor);
  RouterRun run;
  run.report = router.run();
  if (config.adaptive.enabled) {
    run.ledger_hash = router.ledger().state_hash();
    run.ledger_json = router.ledger().to_json();
  }
  return run;
}

void print_router_repro(const ServeArgs& args, const RouterRun& run) {
  std::string outage;
  for (const std::string& token : args.outages) {
    if (!outage.empty()) outage += '+';
    outage += token;
  }
  std::printf("SERVICE-REPRO seed=%" PRIu64
              " jobs=%lld load=%g policy=%s backends=%d faulty=%d tmr=%d"
              " queue=%zu retry=%d size=%d dims=%d threads=%d"
              " pools=%d tenants=%d failover=%d hedge=%d",
              args.seed, static_cast<long long>(args.jobs), args.load,
              args.policy.c_str(), args.backends, args.faulty, args.tmr,
              args.queue_cap, args.retry, args.size, args.dims, args.threads,
              args.pools, args.tenants, args.failover ? 1 : 0,
              args.hedge ? 1 : 0);
  if (!outage.empty()) std::printf(" outage=%s", outage.c_str());
  std::printf(" sdc-budget=%g ledger=%" PRIu64 " hash=%" PRIu64 "\n",
              args.sdc_budget, run.ledger_hash, run.report.hash());
}

/// Federated soak gate: conservation across pools and tenants, the
/// per-tenant queue bound, and verification of every completion.
int check_router_invariants(const ServeArgs& args,
                            const RouterReport& report) {
  int violations = 0;
  if (!report.conserved()) {
    std::printf("VIOLATION: federated conservation — offered=%lld but"
                " tenant terminal outcomes do not add up (silent loss)\n",
                static_cast<long long>(report.offered));
    ++violations;
  }
  for (const TenantStats& t : report.tenants) {
    if (t.queue_high_water > static_cast<std::int64_t>(args.queue_cap)) {
      std::printf("VIOLATION: tenant %s queue bound — high water %lld >"
                  " capacity %zu\n",
                  t.name.c_str(),
                  static_cast<long long>(t.queue_high_water), args.queue_cap);
      ++violations;
    }
  }
  if (report.verified_jobs !=
      report.completed_on_time + report.completed_late) {
    std::printf("VIOLATION: verification — %lld completions but %lld"
                " verified\n",
                static_cast<long long>(report.completed_on_time +
                                       report.completed_late),
                static_cast<long long>(report.verified_jobs));
    ++violations;
  }
  return violations;
}

void print_repro(const ServeArgs& args, const ServeRun& run) {
  std::printf("SERVICE-REPRO seed=%" PRIu64
              " jobs=%lld load=%g policy=%s backends=%d faulty=%d tmr=%d"
              " queue=%zu retry=%d size=%d dims=%d threads=%d"
              " sdc-budget=%g ledger=%" PRIu64 " hash=%" PRIu64 "\n",
              args.seed, static_cast<long long>(args.jobs), args.load,
              args.policy.c_str(), args.backends, args.faulty, args.tmr,
              args.queue_cap, args.retry, args.size, args.dims, args.threads,
              args.sdc_budget, run.ledger_hash, run.report.hash());
}

/// Soak gate: the invariants CI asserts under sanitizers at overload.
int check_invariants(const ServeArgs& args, const ServiceReport& report) {
  int violations = 0;
  if (!report.conserved()) {
    std::printf("VIOLATION: conservation — offered=%lld but terminal"
                " outcomes do not add up (silent loss)\n",
                static_cast<long long>(report.offered));
    ++violations;
  }
  if (report.queue_high_water > static_cast<std::int64_t>(args.queue_cap)) {
    std::printf("VIOLATION: queue bound — high water %lld > capacity %zu\n",
                static_cast<long long>(report.queue_high_water),
                args.queue_cap);
    ++violations;
  }
  if (report.verified_jobs !=
      report.completed_on_time + report.completed_late) {
    std::printf("VIOLATION: verification — %lld completions but %lld"
                " verified\n",
                static_cast<long long>(report.completed_on_time +
                                       report.completed_late),
                static_cast<long long>(report.verified_jobs));
    ++violations;
  }
  return violations;
}

int run_repro(const std::string& line, const std::string& ledger_path) {
  const ReproLine repro(line);
  ServeArgs args;
  args.seed = std::stoull(repro.require("seed"));
  args.jobs = std::stoll(repro.require("jobs"));
  args.load = std::stod(repro.require("load"));
  args.policy = repro.require("policy");
  args.backends = std::stoi(repro.require("backends"));
  args.faulty = std::stoi(repro.require("faulty"));
  // Absent on pre-TMR repro lines; default off.
  args.tmr = repro.has("tmr") ? std::stoi(repro.get("tmr")) : 0;
  args.queue_cap = static_cast<std::size_t>(std::stoul(repro.require("queue")));
  args.retry = std::stoi(repro.require("retry"));
  args.size = std::stoi(repro.require("size"));
  args.dims = std::stoi(repro.require("dims"));
  args.threads = std::stoi(repro.require("threads"));
  // Absent on pre-adaptive repro lines; default off.  A run that
  // preloaded a ledger needs the same --ledger file passed alongside
  // --repro — the line carries only the final state hash.
  args.sdc_budget =
      repro.has("sdc-budget") ? std::stod(repro.get("sdc-budget")) : 0;
  args.ledger_path = ledger_path;
  const std::uint64_t expected_ledger =
      repro.has("ledger") ? std::stoull(repro.get("ledger")) : 0;
  const std::uint64_t expected = std::stoull(repro.require("hash"));

  // Federated repro: the `pools` token switches the replay to the
  // PoolRouter with the line's tenants / failover / hedge / outage
  // configuration.
  if (repro.has("pools") && std::stoi(repro.get("pools")) > 0) {
    args.pools = std::stoi(repro.get("pools"));
    args.tenants = repro.has("tenants") ? std::stoi(repro.get("tenants")) : 1;
    args.failover =
        !repro.has("failover") || std::stoi(repro.get("failover")) != 0;
    args.hedge = !repro.has("hedge") || std::stoi(repro.get("hedge")) != 0;
    if (repro.has("outage")) {
      // P@F~U tokens joined by '+'.
      const std::string joined = repro.get("outage");
      std::size_t start = 0;
      for (std::size_t i = 0; i <= joined.size(); ++i) {
        if (i == joined.size() || joined[i] == '+') {
          if (i > start) args.outages.push_back(joined.substr(start, i - start));
          start = i + 1;
        }
      }
    }
    const RouterRun run = run_router(args, nullptr);
    if (run.report.hash() == expected && run.ledger_hash == expected_ledger) {
      std::printf("repro: federated schedule replayed bit-identically"
                  " (hash=%" PRIu64 " ledger=%" PRIu64 ")\n",
                  expected, expected_ledger);
      return 0;
    }
    std::printf("repro: MISMATCH — expected hash=%" PRIu64 " ledger=%" PRIu64
                " got hash=%" PRIu64 " ledger=%" PRIu64 "\n",
                expected, expected_ledger, run.report.hash(), run.ledger_hash);
    return 1;
  }

  const ServeRun run = run_service(args, nullptr);
  if (run.report.hash() == expected && run.ledger_hash == expected_ledger) {
    std::printf("repro: schedule replayed bit-identically (hash=%" PRIu64
                " ledger=%" PRIu64 ")\n",
                expected, expected_ledger);
    return 0;
  }
  std::printf("repro: MISMATCH — expected hash=%" PRIu64 " ledger=%" PRIu64
              " got hash=%" PRIu64 " ledger=%" PRIu64 "\n",
              expected, expected_ledger, run.report.hash(), run.ledger_hash);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs args;
  std::string repro_line;
  for (int i = 1; i < argc; ++i) {
    const auto has_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (has_value("--jobs")) args.jobs = std::atoll(argv[++i]);
    else if (has_value("--seed"))
      args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (has_value("--load")) args.load = std::atof(argv[++i]);
    else if (has_value("--policy")) args.policy = argv[++i];
    else if (has_value("--backends")) args.backends = std::atoi(argv[++i]);
    else if (has_value("--faulty")) args.faulty = std::atoi(argv[++i]);
    else if (has_value("--tmr")) args.tmr = std::atoi(argv[++i]);
    else if (has_value("--queue-cap"))
      args.queue_cap = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (has_value("--retry")) args.retry = std::atoi(argv[++i]);
    else if (has_value("--size")) args.size = std::atoi(argv[++i]);
    else if (has_value("--dims")) args.dims = std::atoi(argv[++i]);
    else if (has_value("--threads")) args.threads = std::atoi(argv[++i]);
    else if (has_value("--sdc-budget")) args.sdc_budget = std::atof(argv[++i]);
    else if (has_value("--ledger")) args.ledger_path = argv[++i];
    else if (has_value("--json")) args.json_path = argv[++i];
    else if (has_value("--pools")) args.pools = std::atoi(argv[++i]);
    else if (has_value("--tenants")) args.tenants = std::atoi(argv[++i]);
    else if (has_value("--outage")) args.outages.emplace_back(argv[++i]);
    else if (std::strcmp(argv[i], "--no-failover") == 0) args.failover = false;
    else if (std::strcmp(argv[i], "--no-hedge") == 0) args.hedge = false;
    else if (std::strcmp(argv[i], "--soak") == 0) {
      // Overload defaults: 2x capacity, half the pool faulted.
      args.soak = true;
      args.load = 2.0;
      if (args.faulty == 0) args.faulty = std::max(1, args.backends / 2);
    } else if (std::strcmp(argv[i], "--repro") == 0) {
      repro_line = ReproLine::rejoin_args(argc, argv, i + 1);
      i = argc;
      if (repro_line.empty()) {
        std::fprintf(stderr, "--repro needs a SERVICE-REPRO line\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs J] [--seed S] [--load L]"
                   " [--policy drop-tail|edf|priority] [--backends B]"
                   " [--faulty F] [--tmr K] [--queue-cap C] [--retry R]"
                   " [--size N] [--dims r] [--threads T]"
                   " [--sdc-budget P] [--ledger FILE] [--json FILE]"
                   " [--pools P] [--tenants T] [--outage P@F~U]"
                   " [--no-failover] [--no-hedge]"
                   " [--soak] [--repro SERVICE-REPRO-line]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!repro_line.empty()) {
    try {
      return run_repro(repro_line, args.ledger_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--repro: malformed line: %s\n", e.what());
      return 2;
    }
  }

  if (args.pools > 0) {
    try {
      std::int64_t mean = 0;
      const RouterRun run = run_router(args, &mean);
      const RouterReport& report = run.report;
      std::printf("pool router: %d pools x %d backends, %d tenant(s), mean"
                  " service %lld steps, load %.2fx, policy %s, failover %s,"
                  " hedging %s\n\n%s\n\n",
                  args.pools, args.backends, args.tenants,
                  static_cast<long long>(mean), args.load,
                  args.policy.c_str(), args.failover ? "on" : "off",
                  args.hedge ? "on" : "off", report.summary().c_str());
      if (args.sdc_budget > 0) {
        std::printf("adaptive: budget=%g escalations=%lld ledger=%" PRIu64
                    "\n\n",
                    args.sdc_budget,
                    static_cast<long long>(report.cert_escalations),
                    run.ledger_hash);
      }
      print_router_repro(args, run);
      if (!args.json_path.empty() &&
          !write_file(args.json_path, report.json()))
        std::fprintf(stderr, "warning: could not write %s\n",
                     args.json_path.c_str());
      if (args.sdc_budget > 0 && !args.ledger_path.empty())
        (void)persist_ledger(args.ledger_path, run.ledger_json);
      if (args.soak) {
        const int violations = check_router_invariants(args, report);
        if (violations != 0) {
          std::printf("soak: %d invariant violation(s)\n", violations);
          return 1;
        }
        std::printf("soak: all federated invariants held at %.2fx load\n",
                    args.load);
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "prodsort_serve: %s\n", e.what());
      return 2;
    }
  }

  try {
    std::int64_t mean = 0;
    const ServeRun run = run_service(args, &mean);
    const ServiceReport& report = run.report;
    std::printf("sort service: %d backends (%d faulted), mean service"
                " %lld steps, load %.2fx, policy %s\n\n%s\n\n",
                args.backends, args.faulty, static_cast<long long>(mean),
                args.load, args.policy.c_str(), report.summary().c_str());
    if (args.sdc_budget > 0) {
      std::printf("adaptive: budget=%g escalations=%lld ledger=%" PRIu64
                  "\n\n",
                  args.sdc_budget,
                  static_cast<long long>(report.cert_escalations),
                  run.ledger_hash);
    }
    print_repro(args, run);
    if (!args.json_path.empty() && !write_file(args.json_path, report.json()))
      std::fprintf(stderr, "warning: could not write %s\n",
                   args.json_path.c_str());
    if (args.sdc_budget > 0 && !args.ledger_path.empty())
      (void)persist_ledger(args.ledger_path, run.ledger_json);
    if (args.soak) {
      const int violations = check_invariants(args, report);
      if (violations != 0) {
        std::printf("soak: %d invariant violation(s)\n", violations);
        return 1;
      }
      std::printf("soak: all invariants held at %.2fx load\n", args.load);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prodsort_serve: %s\n", e.what());
    return 2;
  }
}
